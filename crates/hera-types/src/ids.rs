//! Strongly-typed identifiers.
//!
//! All ids are thin `u32` newtypes: cheap to copy, hash, and store in the
//! value-pair index, following the perf guidance of using small integer keys
//! in hot data structures.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index widened to `usize`, for slice access.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize);
                Self(raw as u32)
            }
        }
    };
}

id_type!(
    /// Identifier of a (super) record. Base records receive dense ids
    /// `0..n`; after merges, a super record keeps the id chosen by
    /// union–find (the paper's `union(i, j)`).
    RecordId,
    "r"
);

id_type!(
    /// Identifier of a source schema.
    SchemaId,
    "s"
);

id_type!(
    /// Globally unique identifier of one attribute *inside one source
    /// schema*. `CustomerI.name` and `CustomerII.name` have different
    /// `SourceAttrId`s even though they share a display name — deciding
    /// whether they denote the same real attribute is precisely the
    /// schema-matching problem HERA solves as a by-product.
    SourceAttrId,
    "a"
);

id_type!(
    /// Identifier of a *canonical* (semantic) attribute: the equivalence
    /// class that ground truth assigns to source attributes. Table I's
    /// "# of distinct attribute" counts these classes.
    CanonAttrId,
    "c"
);

id_type!(
    /// Identifier of a real-world entity in the ground truth.
    EntityId,
    "e"
);

/// Coordinate of one value inside the record set: record, field, value —
/// the `(rid, fid, vid)` label of Definition 6.
///
/// `fid` indexes a field inside the (super) record; `vid` indexes a value
/// inside that field (base records always have `vid == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label {
    /// Record id component.
    pub rid: u32,
    /// Field index inside the record.
    pub fid: u32,
    /// Value index inside the field.
    pub vid: u32,
}

impl Label {
    /// Creates a label from raw parts.
    #[inline]
    pub const fn new(rid: u32, fid: u32, vid: u32) -> Self {
        Self { rid, fid, vid }
    }

    /// The record id as a typed [`RecordId`].
    #[inline]
    pub const fn record(self) -> RecordId {
        RecordId(self.rid)
    }

    /// Encodes as a JSON object `{"rid": .., "fid": .., "vid": ..}`.
    pub fn to_json(self) -> crate::json::Json {
        use crate::json::Json;
        Json::Obj(vec![
            ("rid".into(), Json::Int(i64::from(self.rid))),
            ("fid".into(), Json::Int(i64::from(self.fid))),
            ("vid".into(), Json::Int(i64::from(self.vid))),
        ])
    }

    /// Decodes from the representation produced by [`Label::to_json`].
    pub fn from_json(json: &crate::json::Json) -> crate::error::Result<Self> {
        Ok(Self {
            rid: json.expect("rid")?.as_u32()?,
            fid: json.expect("fid")?.as_u32()?,
            vid: json.expect("vid")?.as_u32()?,
        })
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.rid, self.fid, self.vid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let r = RecordId::new(7);
        assert_eq!(r.raw(), 7);
        assert_eq!(r.index(), 7);
        assert_eq!(RecordId::from(7u32), r);
        assert_eq!(RecordId::from(7usize), r);
        assert_eq!(r.to_string(), "r7");
    }

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property, but exercise Display prefixes.
        assert_eq!(SchemaId::new(1).to_string(), "s1");
        assert_eq!(SourceAttrId::new(2).to_string(), "a2");
        assert_eq!(CanonAttrId::new(3).to_string(), "c3");
        assert_eq!(EntityId::new(4).to_string(), "e4");
    }

    #[test]
    fn label_ordering_is_lexicographic() {
        let a = Label::new(1, 2, 3);
        let b = Label::new(1, 2, 4);
        let c = Label::new(2, 0, 0);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.record(), RecordId::new(1));
        assert_eq!(a.to_string(), "(1,2,3)");
    }

    #[test]
    fn label_json_roundtrip() {
        let l = Label::new(4, 1, 1);
        let json = l.to_json().to_string_compact();
        assert_eq!(json, r#"{"rid":4,"fid":1,"vid":1}"#);
        let back = Label::from_json(&crate::json::parse(&json).unwrap()).unwrap();
        assert_eq!(l, back);
    }
}
