//! Source schemas and the schema registry.

use crate::error::Result;
use crate::ids::{SchemaId, SourceAttrId};
use crate::json::Json;

/// One attribute of a source schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceAttr {
    /// Globally unique id of this attribute.
    pub id: SourceAttrId,
    /// Display name within its schema (e.g. `"Tel"`, `"Contact No."`).
    /// Names are *not* unique across schemas and carry no identity.
    pub name: String,
}

/// A source schema: an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Id of this schema.
    pub id: SchemaId,
    /// Human-readable name (e.g. `"Customer I"`, `"IMDB"`, `"Target"`).
    pub name: String,
    /// Ordered attributes; a record under this schema stores one value per
    /// attribute, positionally aligned.
    pub attrs: Vec<SourceAttr>,
}

impl Schema {
    /// Number of attributes (`k_i` in the paper).
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Finds the position of an attribute by display name.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Finds the position of an attribute by id.
    pub fn position_of_attr(&self, attr: SourceAttrId) -> Option<usize> {
        self.attrs.iter().position(|a| a.id == attr)
    }
}

/// Interns schemas and hands out globally unique [`SourceAttrId`]s.
///
/// The registry is the single authority for "which attribute is this" —
/// every record's field positions resolve through it, and the schema-based
/// method's votes are keyed by the `SourceAttrId`s it mints.
#[derive(Debug, Clone, Default)]
pub struct SchemaRegistry {
    schemas: Vec<Schema>,
    /// Maps each `SourceAttrId` back to its owning schema. Derived; not
    /// serialized — rebuilt via [`SchemaRegistry::rebuild_lookups`].
    attr_owner: Vec<SchemaId>,
    /// Maps each `SourceAttrId` to its position within its schema.
    /// Derived; not serialized.
    attr_pos: Vec<u32>,
    next_attr: u32,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new schema from attribute display names, minting fresh
    /// attribute ids. Returns the new schema's id.
    pub fn add_schema<S: Into<String>, I: IntoIterator<Item = S>>(
        &mut self,
        name: impl Into<String>,
        attr_names: I,
    ) -> SchemaId {
        let id = SchemaId::from(self.schemas.len());
        let attrs: Vec<SourceAttr> = attr_names
            .into_iter()
            .enumerate()
            .map(|(pos, n)| {
                let attr_id = SourceAttrId::new(self.next_attr);
                self.next_attr += 1;
                self.attr_owner.push(id);
                self.attr_pos.push(pos as u32);
                SourceAttr {
                    id: attr_id,
                    name: n.into(),
                }
            })
            .collect();
        self.schemas.push(Schema {
            id,
            name: name.into(),
            attrs,
        });
        id
    }

    /// Number of registered schemas.
    #[inline]
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True if no schemas are registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Looks up a schema.
    ///
    /// # Panics
    /// Panics if the id was not minted by this registry.
    #[inline]
    pub fn schema(&self, id: SchemaId) -> &Schema {
        &self.schemas[id.index()]
    }

    /// Iterates over all schemas in registration order.
    pub fn schemas(&self) -> impl Iterator<Item = &Schema> {
        self.schemas.iter()
    }

    /// Total number of source attributes minted so far.
    #[inline]
    pub fn attr_count(&self) -> usize {
        self.next_attr as usize
    }

    /// The schema that owns `attr`.
    #[inline]
    pub fn attr_schema(&self, attr: SourceAttrId) -> SchemaId {
        self.attr_owner[attr.index()]
    }

    /// The position of `attr` within its owning schema.
    #[inline]
    pub fn attr_position(&self, attr: SourceAttrId) -> usize {
        self.attr_pos[attr.index()] as usize
    }

    /// The display name of `attr`, qualified by its schema
    /// (`"Customer I.name"`).
    pub fn attr_qualified_name(&self, attr: SourceAttrId) -> String {
        let schema = self.schema(self.attr_schema(attr));
        let pos = self.attr_position(attr);
        format!("{}.{}", schema.name, schema.attrs[pos].name)
    }

    /// Encodes as JSON: `{"schemas": [..], "next_attr": n}`. The derived
    /// lookup tables are omitted, matching the serde `skip` encoding of
    /// earlier builds.
    pub fn to_json(&self) -> Json {
        let schemas = self
            .schemas
            .iter()
            .map(|schema| {
                let attrs = schema
                    .attrs
                    .iter()
                    .map(|a| {
                        Json::Obj(vec![
                            ("id".into(), Json::Int(i64::from(a.id.raw()))),
                            ("name".into(), Json::Str(a.name.clone())),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("id".into(), Json::Int(i64::from(schema.id.raw()))),
                    ("name".into(), Json::Str(schema.name.clone())),
                    ("attrs".into(), Json::Arr(attrs)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schemas".into(), Json::Arr(schemas)),
            ("next_attr".into(), Json::Int(i64::from(self.next_attr))),
        ])
    }

    /// Decodes from the representation produced by
    /// [`SchemaRegistry::to_json`]. The derived lookup tables start empty;
    /// call [`SchemaRegistry::rebuild_lookups`] before resolving attributes.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut schemas = Vec::new();
        for s in json.expect("schemas")?.as_arr()? {
            let mut attrs = Vec::new();
            for a in s.expect("attrs")?.as_arr()? {
                attrs.push(SourceAttr {
                    id: SourceAttrId::new(a.expect("id")?.as_u32()?),
                    name: a.expect("name")?.as_str()?.to_owned(),
                });
            }
            schemas.push(Schema {
                id: SchemaId::new(s.expect("id")?.as_u32()?),
                name: s.expect("name")?.as_str()?.to_owned(),
                attrs,
            });
        }
        Ok(Self {
            schemas,
            attr_owner: Vec::new(),
            attr_pos: Vec::new(),
            next_attr: json.expect("next_attr")?.as_u32()?,
        })
    }

    /// Rebuilds the derived (non-serialized) lookup tables after
    /// deserialization.
    pub fn rebuild_lookups(&mut self) {
        self.attr_owner = vec![SchemaId::new(0); self.next_attr as usize];
        self.attr_pos = vec![0; self.next_attr as usize];
        for schema in &self.schemas {
            for (pos, attr) in schema.attrs.iter().enumerate() {
                self.attr_owner[attr.id.index()] = schema.id;
                self.attr_pos[attr.id.index()] = pos as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_two() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.add_schema(
            "Customer I",
            ["name", "address", "e-mail", "city", "Con.Type"],
        );
        reg.add_schema("Customer II", ["name", "Contact No.", "Job"]);
        reg
    }

    #[test]
    fn schema_ids_are_dense() {
        let reg = registry_with_two();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.schema(SchemaId::new(0)).name, "Customer I");
        assert_eq!(reg.schema(SchemaId::new(1)).name, "Customer II");
    }

    #[test]
    fn attr_ids_are_globally_unique() {
        let reg = registry_with_two();
        assert_eq!(reg.attr_count(), 8);
        let s0 = reg.schema(SchemaId::new(0));
        let s1 = reg.schema(SchemaId::new(1));
        // Both schemas have an attribute called "name" — different ids.
        let a0 = s0.attrs[s0.position_of("name").unwrap()].id;
        let a1 = s1.attrs[s1.position_of("name").unwrap()].id;
        assert_ne!(a0, a1);
    }

    #[test]
    fn attr_reverse_lookup() {
        let reg = registry_with_two();
        let s1 = reg.schema(SchemaId::new(1));
        let tel = s1.attrs[1].id;
        assert_eq!(reg.attr_schema(tel), SchemaId::new(1));
        assert_eq!(reg.attr_position(tel), 1);
        assert_eq!(reg.attr_qualified_name(tel), "Customer II.Contact No.");
    }

    #[test]
    fn position_of_attr() {
        let reg = registry_with_two();
        let s0 = reg.schema(SchemaId::new(0));
        let email = s0.attrs[2].id;
        assert_eq!(s0.position_of_attr(email), Some(2));
        assert_eq!(s0.position_of("nonexistent"), None);
    }

    #[test]
    fn arity() {
        let reg = registry_with_two();
        assert_eq!(reg.schema(SchemaId::new(0)).arity(), 5);
        assert_eq!(reg.schema(SchemaId::new(1)).arity(), 3);
    }

    #[test]
    fn rebuild_lookups_after_json_roundtrip() {
        let reg = registry_with_two();
        let json = reg.to_json().to_string_compact();
        let mut back = SchemaRegistry::from_json(&crate::json::parse(&json).unwrap()).unwrap();
        back.rebuild_lookups();
        let s1 = back.schema(SchemaId::new(1));
        let tel = s1.attrs[1].id;
        assert_eq!(back.attr_qualified_name(tel), "Customer II.Contact No.");
    }
}
