//! Base records.

use crate::error::Result;
use crate::ids::{RecordId, SchemaId};
use crate::json::Json;
use crate::value::Value;

/// A base record: one tuple under one source schema.
///
/// `values[k]` is the value of the schema's `k`-th attribute. Base records
/// are the "simplest super record, where each field stores one value"
/// (§II-A); `hera-core` lifts them into
/// [`SuperRecord`](https://docs.rs/hera-core)s when HERA starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Dense record id within its dataset.
    pub id: RecordId,
    /// The schema this record is an instance of.
    pub schema: SchemaId,
    /// One value per schema attribute, positionally aligned.
    pub values: Vec<Value>,
}

impl Record {
    /// Creates a record; `values.len()` must match the schema arity (checked
    /// by [`DatasetBuilder`](crate::DatasetBuilder) on insert).
    pub fn new(id: RecordId, schema: SchemaId, values: Vec<Value>) -> Self {
        Self { id, schema, values }
    }

    /// Number of fields.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Number of non-null fields — the record's usable information content.
    pub fn non_null_arity(&self) -> usize {
        self.values.iter().filter(|v| !v.is_null()).count()
    }

    /// Iterates `(field position, value)` over non-null fields.
    pub fn present_fields(&self) -> impl Iterator<Item = (usize, &Value)> {
        self.values.iter().enumerate().filter(|(_, v)| !v.is_null())
    }

    /// Encodes as JSON: `{"id": .., "schema": .., "values": [..]}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::Int(i64::from(self.id.raw()))),
            ("schema".into(), Json::Int(i64::from(self.schema.raw()))),
            (
                "values".into(),
                Json::Arr(self.values.iter().map(Value::to_json).collect()),
            ),
        ])
    }

    /// Decodes from the representation produced by [`Record::to_json`].
    pub fn from_json(json: &Json) -> Result<Self> {
        let values = json
            .expect("values")?
            .as_arr()?
            .iter()
            .map(Value::from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            id: RecordId::new(json.expect("id")?.as_u32()?),
            schema: SchemaId::new(json.expect("schema")?.as_u32()?),
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_counts() {
        let r = Record::new(
            RecordId::new(0),
            SchemaId::new(0),
            vec![Value::from("x"), Value::Null, Value::from(3i64)],
        );
        assert_eq!(r.arity(), 3);
        assert_eq!(r.non_null_arity(), 2);
        let present: Vec<usize> = r.present_fields().map(|(i, _)| i).collect();
        assert_eq!(present, vec![0, 2]);
    }
}
