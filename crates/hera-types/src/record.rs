//! Base records.

use crate::ids::{RecordId, SchemaId};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A base record: one tuple under one source schema.
///
/// `values[k]` is the value of the schema's `k`-th attribute. Base records
/// are the "simplest super record, where each field stores one value"
/// (§II-A); `hera-core` lifts them into
/// [`SuperRecord`](https://docs.rs/hera-core)s when HERA starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Dense record id within its dataset.
    pub id: RecordId,
    /// The schema this record is an instance of.
    pub schema: SchemaId,
    /// One value per schema attribute, positionally aligned.
    pub values: Vec<Value>,
}

impl Record {
    /// Creates a record; `values.len()` must match the schema arity (checked
    /// by [`DatasetBuilder`](crate::DatasetBuilder) on insert).
    pub fn new(id: RecordId, schema: SchemaId, values: Vec<Value>) -> Self {
        Self { id, schema, values }
    }

    /// Number of fields.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Number of non-null fields — the record's usable information content.
    pub fn non_null_arity(&self) -> usize {
        self.values.iter().filter(|v| !v.is_null()).count()
    }

    /// Iterates `(field position, value)` over non-null fields.
    pub fn present_fields(&self) -> impl Iterator<Item = (usize, &Value)> {
        self.values.iter().enumerate().filter(|(_, v)| !v.is_null())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_counts() {
        let r = Record::new(
            RecordId::new(0),
            SchemaId::new(0),
            vec![Value::from("x"), Value::Null, Value::from(3i64)],
        );
        assert_eq!(r.arity(), 3);
        assert_eq!(r.non_null_arity(), 2);
        let present: Vec<usize> = r.present_fields().map(|(i, _)| i).collect();
        assert_eq!(present, vec![0, 2]);
    }
}
