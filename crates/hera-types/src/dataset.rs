//! Datasets: record collections with schemas and ground truth.

use crate::error::{HeraError, Result};
use crate::ids::{CanonAttrId, EntityId, RecordId, SchemaId, SourceAttrId};
use crate::json::Json;
use crate::record::Record;
use crate::schema::SchemaRegistry;
use crate::value::Value;
use rustc_hash::FxHashMap;

/// Ground truth for a dataset.
///
/// * `entity_of[rid]` — which real-world entity record `rid` describes
///   (Table I counts the distinct values of this map).
/// * `canon_of[attr]` — which canonical attribute each source attribute
///   denotes. This is the oracle schema matching: the evaluation's data
///   exchange step uses it, and the schema-based method's accuracy is
///   measured against it. HERA itself never reads it.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    entity_of: Vec<EntityId>,
    canon_of: Vec<CanonAttrId>,
}

impl GroundTruth {
    /// Builds ground truth from per-record entity labels and per-attribute
    /// canonical classes.
    pub fn new(entity_of: Vec<EntityId>, canon_of: Vec<CanonAttrId>) -> Self {
        Self {
            entity_of,
            canon_of,
        }
    }

    /// Entity of a record.
    #[inline]
    pub fn entity_of(&self, rid: RecordId) -> EntityId {
        self.entity_of[rid.index()]
    }

    /// Canonical class of a source attribute.
    #[inline]
    pub fn canon_of(&self, attr: SourceAttrId) -> CanonAttrId {
        self.canon_of[attr.index()]
    }

    /// Number of labeled records.
    #[inline]
    pub fn record_count(&self) -> usize {
        self.entity_of.len()
    }

    /// Number of distinct entities among the labeled records.
    pub fn entity_count(&self) -> usize {
        let mut seen: Vec<EntityId> = self.entity_of.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Number of distinct canonical attribute classes (Table I's
    /// "# of distinct attribute").
    pub fn distinct_attr_count(&self) -> usize {
        let mut seen: Vec<CanonAttrId> = self.canon_of.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// True if two records co-refer.
    #[inline]
    pub fn same_entity(&self, a: RecordId, b: RecordId) -> bool {
        self.entity_of(a) == self.entity_of(b)
    }

    /// True if two source attributes denote the same canonical attribute.
    #[inline]
    pub fn same_attr(&self, a: SourceAttrId, b: SourceAttrId) -> bool {
        self.canon_of(a) == self.canon_of(b)
    }

    /// Groups record ids by entity, in ascending entity order.
    pub fn clusters(&self) -> Vec<Vec<RecordId>> {
        let mut by_entity: FxHashMap<EntityId, Vec<RecordId>> = FxHashMap::default();
        for (idx, &e) in self.entity_of.iter().enumerate() {
            by_entity.entry(e).or_default().push(RecordId::from(idx));
        }
        let mut out: Vec<(EntityId, Vec<RecordId>)> = by_entity.into_iter().collect();
        out.sort_unstable_by_key(|(e, _)| *e);
        out.into_iter().map(|(_, rs)| rs).collect()
    }

    /// Total number of co-referring record pairs — the denominator of the
    /// paper's recall.
    pub fn positive_pair_count(&self) -> usize {
        self.clusters()
            .iter()
            .map(|c| c.len() * (c.len() - 1) / 2)
            .sum()
    }

    /// Encodes as JSON: `{"entity_of": [..], "canon_of": [..]}`.
    pub fn to_json(&self) -> Json {
        let ids = |v: &[u32]| Json::Arr(v.iter().map(|&i| Json::Int(i64::from(i))).collect());
        Json::Obj(vec![
            (
                "entity_of".into(),
                ids(&self.entity_of.iter().map(|e| e.raw()).collect::<Vec<_>>()),
            ),
            (
                "canon_of".into(),
                ids(&self.canon_of.iter().map(|c| c.raw()).collect::<Vec<_>>()),
            ),
        ])
    }

    /// Decodes from the representation produced by [`GroundTruth::to_json`].
    pub fn from_json(json: &Json) -> Result<Self> {
        let entity_of = json
            .expect("entity_of")?
            .as_arr()?
            .iter()
            .map(|v| v.as_u32().map(EntityId::new))
            .collect::<Result<Vec<_>>>()?;
        let canon_of = json
            .expect("canon_of")?
            .as_arr()?
            .iter()
            .map(|v| v.as_u32().map(CanonAttrId::new))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            entity_of,
            canon_of,
        })
    }
}

/// A heterogeneous (or homogeneous) record collection.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Schema registry for all records.
    pub registry: SchemaRegistry,
    /// Records, indexed densely by [`RecordId`].
    pub records: Vec<Record>,
    /// Ground truth labels (entities and attribute identity).
    pub truth: GroundTruth,
    /// Human-readable name (e.g. `"D_m1"`).
    pub name: String,
}

impl Dataset {
    /// Number of records (`n` in Table I).
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a record by id.
    #[inline]
    pub fn record(&self, rid: RecordId) -> &Record {
        &self.records[rid.index()]
    }

    /// Iterates over records in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// The `SourceAttrId` behind field `fid` of record `rid`.
    #[inline]
    pub fn attr_of_field(&self, rid: RecordId, fid: usize) -> SourceAttrId {
        let rec = self.record(rid);
        self.registry.schema(rec.schema).attrs[fid].id
    }

    /// Serializes to pretty JSON (datagen export; not a hot path).
    pub fn to_json(&self) -> Result<String> {
        let tree = Json::Obj(vec![
            ("registry".into(), self.registry.to_json()),
            (
                "records".into(),
                Json::Arr(self.records.iter().map(Record::to_json).collect()),
            ),
            ("truth".into(), self.truth.to_json()),
            ("name".into(), Json::Str(self.name.clone())),
        ]);
        Ok(tree.to_string_pretty())
    }

    /// Deserializes from JSON, rebuilding registry lookups.
    pub fn from_json(json: &str) -> Result<Self> {
        let tree = crate::json::parse(json)?;
        let mut registry = SchemaRegistry::from_json(tree.expect("registry")?)?;
        registry.rebuild_lookups();
        let records = tree
            .expect("records")?
            .as_arr()?
            .iter()
            .map(Record::from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            registry,
            records,
            truth: GroundTruth::from_json(tree.expect("truth")?)?,
            name: tree.expect("name")?.as_str()?.to_owned(),
        })
    }
}

/// Incremental [`Dataset`] constructor with validation.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    registry: SchemaRegistry,
    records: Vec<Record>,
    entity_of: Vec<EntityId>,
    canon_of: Vec<CanonAttrId>,
    name: String,
}

impl DatasetBuilder {
    /// Creates a named builder.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Registers a schema whose attributes map onto the given canonical
    /// classes (one per attribute, same order). Returns the schema id.
    pub fn add_schema<S: Into<String>>(
        &mut self,
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = (S, CanonAttrId)>,
    ) -> SchemaId {
        let (names, canons): (Vec<String>, Vec<CanonAttrId>) =
            attrs.into_iter().map(|(n, c)| (n.into(), c)).unzip();
        let id = self.registry.add_schema(name, names);
        self.canon_of.extend(canons);
        id
    }

    /// Appends a record with its ground-truth entity. Validates arity.
    pub fn add_record(
        &mut self,
        schema: SchemaId,
        values: Vec<Value>,
        entity: EntityId,
    ) -> Result<RecordId> {
        let expected = self.registry.schema(schema).arity();
        if values.len() != expected {
            return Err(HeraError::ArityMismatch {
                record: self.records.len() as u32,
                expected,
                actual: values.len(),
            });
        }
        let rid = RecordId::from(self.records.len());
        self.records.push(Record::new(rid, schema, values));
        self.entity_of.push(entity);
        Ok(rid)
    }

    /// Finalizes the dataset.
    pub fn build(self) -> Dataset {
        Dataset {
            registry: self.registry,
            records: self.records,
            truth: GroundTruth::new(self.entity_of, self.canon_of),
            name: self.name,
        }
    }

    /// Read-only access to the registry while building.
    pub fn registry(&self) -> &SchemaRegistry {
        &self.registry
    }
}

/// Builds the paper's Fig. 1 motivating example: six customer records under
/// three source schemas, with ground truth
/// `{r1, r2, r4, r6}` / `{r3, r5}` (0-indexed here as
/// `{0, 1, 3, 5}` / `{2, 4}`).
///
/// Canonical attribute classes: 0=name, 1=address, 2=e-mail, 3=city,
/// 4=consumption type, 5=phone, 6=job.
pub fn motivating_example() -> Dataset {
    let mut b = DatasetBuilder::new("fig1-customers");
    let c = CanonAttrId::new;
    let s1 = b.add_schema(
        "Customer I",
        [
            ("name", c(0)),
            ("address", c(1)),
            ("e-mail", c(2)),
            ("city", c(3)),
            ("Con.Type", c(4)),
        ],
    );
    let s2 = b.add_schema(
        "Customer II",
        [("name", c(0)), ("Contact No.", c(5)), ("Job", c(6))],
    );
    let s3 = b.add_schema(
        "Customer III",
        [
            ("name", c(0)),
            ("addr", c(1)),
            ("work mailbox", c(2)),
            ("Tel", c(5)),
            ("Con.Type", c(4)),
        ],
    );
    let e = EntityId::new;
    let v = Value::from;
    // r1 (paper) = record 0 here, and so on.
    b.add_record(
        s1,
        vec![
            v("John"),
            v("2 Norman Street"),
            v("bush@gmail"),
            v("LA"),
            v("Electronic"),
        ],
        e(0),
    )
    .unwrap();
    b.add_record(s2, vec![v("Bush"), v("831-432"), v("manager")], e(0))
        .unwrap();
    b.add_record(
        s2,
        vec![v("J.Bush"), v("247-326"), v("Product manager")],
        e(1),
    )
    .unwrap();
    b.add_record(
        s3,
        vec![
            v("Bush"),
            v("2 West Norman"),
            v("bush@gmail"),
            v("831-432"),
            v("Electronic"),
        ],
        e(0),
    )
    .unwrap();
    b.add_record(
        s3,
        vec![
            v("J.Bush"),
            v("West Norman"),
            v("john@gmail"),
            v("247-326"),
            v("sports"),
        ],
        e(1),
    )
    .unwrap();
    b.add_record(
        s3,
        vec![
            v("John"),
            v("2 Norman Street"),
            v("bush@gmail"),
            v("831-432"),
            v("electronics"),
        ],
        e(0),
    )
    .unwrap();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivating_example_shape() {
        let ds = motivating_example();
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.registry.len(), 3);
        assert_eq!(ds.truth.entity_count(), 2);
        assert_eq!(ds.truth.distinct_attr_count(), 7);
        // r1, r2, r4, r6 (1-indexed) co-refer.
        let r = RecordId::new;
        assert!(ds.truth.same_entity(r(0), r(1)));
        assert!(ds.truth.same_entity(r(0), r(3)));
        assert!(ds.truth.same_entity(r(0), r(5)));
        assert!(ds.truth.same_entity(r(2), r(4)));
        assert!(!ds.truth.same_entity(r(0), r(2)));
    }

    #[test]
    fn positive_pairs() {
        let ds = motivating_example();
        // Cluster sizes 4 and 2 → C(4,2)+C(2,2) = 6+1 = 7.
        assert_eq!(ds.truth.positive_pair_count(), 7);
        let clusters = ds.truth.clusters();
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len() + clusters[1].len(), 6);
    }

    #[test]
    fn attr_of_field_resolves_through_schema() {
        let ds = motivating_example();
        let attr = ds.attr_of_field(RecordId::new(1), 1);
        assert_eq!(
            ds.registry.attr_qualified_name(attr),
            "Customer II.Contact No."
        );
    }

    #[test]
    fn same_attr_uses_canonical_classes() {
        let ds = motivating_example();
        // Customer I.e-mail and Customer III.work mailbox are both canon 2.
        let a = ds.attr_of_field(RecordId::new(0), 2);
        let b = ds.attr_of_field(RecordId::new(3), 2);
        assert!(ds.truth.same_attr(a, b));
        let name = ds.attr_of_field(RecordId::new(0), 0);
        assert!(!ds.truth.same_attr(a, name));
    }

    #[test]
    fn builder_rejects_arity_mismatch() {
        let mut b = DatasetBuilder::new("t");
        let s = b.add_schema("S", [("x", CanonAttrId::new(0))]);
        let err = b
            .add_record(
                s,
                vec![Value::from("a"), Value::from("b")],
                EntityId::new(0),
            )
            .unwrap_err();
        assert!(matches!(err, HeraError::ArityMismatch { .. }));
    }

    #[test]
    fn json_roundtrip() {
        let ds = motivating_example();
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.truth.entity_count(), 2);
        // Registry lookups were rebuilt.
        let attr = back.attr_of_field(RecordId::new(1), 1);
        assert_eq!(
            back.registry.attr_qualified_name(attr),
            "Customer II.Contact No."
        );
    }
}
