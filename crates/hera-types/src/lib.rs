//! Core data model for HERA — entity resolution on heterogeneous records.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Value`] — a single attribute value (string, integer, float, or null).
//! * [`Schema`] / [`SchemaRegistry`] — per-source schemas whose attributes are
//!   interned into globally unique [`SourceAttrId`]s. Two sources may both
//!   call an attribute `"name"`, yet their attributes remain distinct until
//!   HERA's schema-based method (or ground truth) says otherwise.
//! * [`Record`] — a tuple under one source schema.
//! * [`Dataset`] — a heterogeneous record collection plus its
//!   [`GroundTruth`] (entity labels per record, canonical identity per
//!   source attribute).
//! * [`Label`] — the `(rid, fid, vid)` coordinate of a value inside a
//!   (super) record, exactly as used by the paper's value-pair index
//!   (Definition 6).
//!
//! The paper's notation maps onto this crate as follows: a record set
//! `R = {r_1 .. r_n}` is a [`Dataset`]; the schema `s_i` of `r_i` with
//! attributes `a^i_1 .. a^i_{k_i}` is a [`Schema`] whose attributes carry
//! [`SourceAttrId`]s; and the *distinct attribute* count of §VI (Table I) is
//! the number of [`CanonAttrId`] equivalence classes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csv;
mod dataset;
mod error;
mod ids;
pub mod json;
mod record;
mod schema;
mod value;

pub use csv::CsvImporter;
pub use dataset::{motivating_example, Dataset, DatasetBuilder, GroundTruth};
pub use error::{HeraError, Result};
pub use ids::{CanonAttrId, EntityId, Label, RecordId, SchemaId, SourceAttrId};
pub use record::Record;
pub use schema::{Schema, SchemaRegistry, SourceAttr};
pub use value::{Value, ValueKind};
