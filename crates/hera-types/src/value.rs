//! Attribute values.

use crate::error::{HeraError, Result};
use crate::json::Json;
use std::cmp::Ordering;
use std::fmt;

/// One attribute value of a record.
///
/// The paper treats value similarity as a black box over "various data
/// types, such as string data, numeric data, etc." (§II-A); this enum is the
/// concrete carrier those black boxes dispatch on. `Null` exists for the
/// homogeneous datasets produced by data exchange, where target attributes
/// with no source counterpart become labeled nulls.
#[derive(Debug, Clone)]
pub enum Value {
    /// Free-form text (the dominant case; compared with q-gram Jaccard by
    /// default).
    Str(String),
    /// Integer data (years, counts, phone-number-ish codes).
    Int(i64),
    /// Floating-point data (ratings, runtimes).
    Float(f64),
    /// Absent value. Introduced by data exchange; never similar to anything.
    Null,
}

/// Discriminant of a [`Value`], used by similarity dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// String value.
    Str,
    /// Integer value.
    Int,
    /// Float value.
    Float,
    /// Null value.
    Null,
}

impl Value {
    /// Returns the kind discriminant.
    #[inline]
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Str(_) => ValueKind::Str,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Null => ValueKind::Null,
        }
    }

    /// True if the value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the string payload if this is a string value.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns a numeric view: integers and floats both map to `f64`.
    #[inline]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Renders the value as display text; numbers use their canonical
    /// formatting and nulls render as the empty string. This is the text
    /// the string-similarity fallbacks operate on when comparing values of
    /// mixed kinds.
    pub fn to_text(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f}"),
            Value::Null => String::new(),
        }
    }

    /// Encodes as externally tagged JSON — `{"Str": ..}`, `{"Int": ..}`,
    /// `{"Float": ..}`, or the bare string `"Null"` — matching the format
    /// earlier (serde-based) builds exported.
    pub fn to_json(&self) -> Json {
        match self {
            Value::Str(s) => Json::Obj(vec![("Str".into(), Json::Str(s.clone()))]),
            Value::Int(i) => Json::Obj(vec![("Int".into(), Json::Int(*i))]),
            Value::Float(f) => Json::Obj(vec![("Float".into(), Json::Float(*f))]),
            Value::Null => Json::Str("Null".into()),
        }
    }

    /// Decodes from the representation produced by [`Value::to_json`].
    pub fn from_json(json: &Json) -> Result<Self> {
        match json {
            Json::Str(tag) if tag == "Null" => Ok(Value::Null),
            Json::Obj(pairs) if pairs.len() == 1 => {
                let (tag, payload) = &pairs[0];
                match tag.as_str() {
                    "Str" => Ok(Value::Str(payload.as_str()?.to_owned())),
                    "Int" => Ok(Value::Int(payload.as_i64()?)),
                    "Float" => Ok(Value::Float(payload.as_f64()?)),
                    other => Err(HeraError::Serialization(format!(
                        "unknown value tag {other:?}"
                    ))),
                }
            }
            _ => Err(HeraError::Serialization(
                "expected a tagged value object or \"Null\"".into(),
            )),
        }
    }

    /// Structural equality that treats `Null` as not equal to anything,
    /// including another `Null` (SQL semantics): nulls carry no evidence.
    pub fn same(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            _ => false,
        }
    }
}

impl PartialEq for Value {
    /// Structural equality for container use; unlike [`Value::same`], two
    /// `Null`s compare equal here so that `Value` can live in maps/sets.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.same(other),
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: Null < numbers (by value) < strings (lexicographic).
    /// Only used for deterministic iteration; not semantically meaningful.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                let (x, y) = (a.as_number().unwrap(), b.as_number().unwrap());
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Str(s) => {
                0u8.hash(state);
                s.hash(state);
            }
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Null => 2u8.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Null => write!(f, "∅"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert_eq!(Value::from("x").kind(), ValueKind::Str);
        assert_eq!(Value::from(3i64).kind(), ValueKind::Int);
        assert_eq!(Value::from(3.5).kind(), ValueKind::Float);
        assert_eq!(Value::Null.kind(), ValueKind::Null);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn same_null_semantics() {
        assert!(!Value::Null.same(&Value::Null));
        assert!(Value::from(3i64).same(&Value::Float(3.0)));
        assert!(Value::from("a").same(&Value::from("a")));
        assert!(!Value::from("a").same(&Value::from("b")));
        assert!(!Value::from("3").same(&Value::from(3i64)));
    }

    #[test]
    fn eq_for_containers() {
        // PartialEq treats Null == Null so Values can key maps.
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn to_text() {
        assert_eq!(Value::from("ab").to_text(), "ab");
        assert_eq!(Value::from(42i64).to_text(), "42");
        assert_eq!(Value::from(1.5).to_text(), "1.5");
        assert_eq!(Value::Null.to_text(), "");
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut vs = vec![
            Value::from("b"),
            Value::Null,
            Value::from(10i64),
            Value::from(2.5),
            Value::from("a"),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::from(2.5),
                Value::from(10i64),
                Value::from("a"),
                Value::from("b"),
            ]
        );
    }

    #[test]
    fn numeric_view() {
        assert_eq!(Value::from(2i64).as_number(), Some(2.0));
        assert_eq!(Value::from(2.5).as_number(), Some(2.5));
        assert_eq!(Value::from("2").as_number(), None);
        assert_eq!(Value::Null.as_number(), None);
    }

    #[test]
    fn json_roundtrip_preserves_kind() {
        for v in [
            Value::from("a\"b"),
            Value::from(-3i64),
            Value::from(2.0),
            Value::from(2.5),
            Value::Null,
        ] {
            let json = v.to_json().to_string_compact();
            let back = Value::from_json(&crate::json::parse(&json).unwrap()).unwrap();
            assert_eq!(v.kind(), back.kind(), "{json}");
            assert_eq!(v, back, "{json}");
        }
    }

    #[test]
    fn hash_consistent_with_eq_for_numbers() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
    }
}
