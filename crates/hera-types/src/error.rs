//! Error type shared across the workspace.

use std::fmt;

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, HeraError>;

/// Errors produced by HERA components.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HeraError {
    /// A record's value count does not match its schema's arity.
    ArityMismatch {
        /// Offending record id (dataset position).
        record: u32,
        /// Expected arity from the schema.
        expected: usize,
        /// Number of values actually supplied.
        actual: usize,
    },
    /// An id referenced an object not registered in this dataset.
    UnknownId(String),
    /// A configuration value is out of its legal domain.
    InvalidConfig(String),
    /// Ground truth is missing or inconsistent with the record set.
    GroundTruth(String),
    /// Dataset (de)serialization failed.
    Serialization(String),
    /// An operating-system I/O operation failed. Carries the rendered
    /// `std::io::Error` (plus path context) so the variant stays `Clone`
    /// and `Eq`.
    Io(String),
    /// A snapshot or other persisted artifact failed integrity checks
    /// (bad magic, CRC mismatch, truncation, malformed section).
    Corrupt(String),
    /// A persisted artifact was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the artifact.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// A checkpoint write failed even after the retry policy was
    /// exhausted. The in-memory session is intact — callers may keep
    /// resolving and try to checkpoint again later.
    CheckpointFailed {
        /// Write attempts spent (including the first).
        attempts: u32,
        /// The error of the final attempt.
        cause: Box<HeraError>,
    },
}

impl fmt::Display for HeraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeraError::ArityMismatch {
                record,
                expected,
                actual,
            } => write!(
                f,
                "record r{record}: schema expects {expected} values, got {actual}"
            ),
            HeraError::UnknownId(what) => write!(f, "unknown id: {what}"),
            HeraError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HeraError::GroundTruth(msg) => write!(f, "ground truth error: {msg}"),
            HeraError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            HeraError::Io(msg) => write!(f, "i/o error: {msg}"),
            HeraError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            HeraError::VersionMismatch { found, expected } => write!(
                f,
                "version mismatch: artifact has format v{found}, this build expects v{expected}"
            ),
            HeraError::CheckpointFailed { attempts, cause } => write!(
                f,
                "checkpoint failed after {attempts} attempt{}: {cause}",
                if *attempts == 1 { "" } else { "s" }
            ),
        }
    }
}

impl std::error::Error for HeraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = HeraError::ArityMismatch {
            record: 3,
            expected: 5,
            actual: 4,
        };
        assert_eq!(e.to_string(), "record r3: schema expects 5 values, got 4");
        assert!(HeraError::InvalidConfig("xi must be in [0,1]".into())
            .to_string()
            .contains("xi"));
    }

    #[test]
    fn persistence_display_messages() {
        assert_eq!(
            HeraError::Io("snap.hera: permission denied".into()).to_string(),
            "i/o error: snap.hera: permission denied"
        );
        assert!(HeraError::Corrupt("crc mismatch".into())
            .to_string()
            .contains("crc"));
        assert_eq!(
            HeraError::VersionMismatch {
                found: 9,
                expected: 1
            }
            .to_string(),
            "version mismatch: artifact has format v9, this build expects v1"
        );
    }

    #[test]
    fn checkpoint_failed_display_counts_attempts() {
        let once = HeraError::CheckpointFailed {
            attempts: 1,
            cause: Box::new(HeraError::Io("disk full".into())),
        };
        assert_eq!(
            once.to_string(),
            "checkpoint failed after 1 attempt: i/o error: disk full"
        );
        let thrice = HeraError::CheckpointFailed {
            attempts: 3,
            cause: Box::new(HeraError::Io("disk full".into())),
        };
        assert!(thrice.to_string().contains("3 attempts"), "{thrice}");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&HeraError::UnknownId("s9".into()));
    }
}
