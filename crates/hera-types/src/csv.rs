//! CSV ingestion: build heterogeneous datasets from one CSV file per
//! source.
//!
//! Each file's header row becomes a source schema; each data row becomes
//! a record. Values parse as integers, then floats, then strings; empty
//! cells become nulls. The parser handles RFC-4180 quoting (embedded
//! commas, escaped quotes, newlines inside quoted fields).
//!
//! Ground truth is optional: [`CsvImporter::with_entity_column`] names a
//! column holding entity identifiers (dropped from the schema, used as
//! labels); without it every record gets a distinct entity, which makes
//! recall metrics meaningless but lets HERA run on unlabeled data.

use crate::dataset::{Dataset, DatasetBuilder};
use crate::error::{HeraError, Result};
use crate::ids::{CanonAttrId, EntityId};
use crate::value::Value;
use rustc_hash::FxHashMap;

/// Splits one CSV record (RFC-4180): returns the fields and the number
/// of input bytes consumed (including the terminating newline).
fn parse_record(input: &str) -> Option<(Vec<String>, usize)> {
    if input.is_empty() {
        return None;
    }
    let bytes = input.as_bytes();
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut i = 0usize;
    let mut in_quotes = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_quotes {
            if c == '"' {
                if bytes.get(i + 1) == Some(&b'"') {
                    field.push('"');
                    i += 2;
                } else {
                    in_quotes = false;
                    i += 1;
                }
            } else {
                // Multi-byte chars: push the full char.
                let ch = input[i..].chars().next().unwrap();
                field.push(ch);
                i += ch.len_utf8();
            }
        } else {
            match c {
                '"' if field.is_empty() => {
                    in_quotes = true;
                    i += 1;
                }
                ',' => {
                    fields.push(std::mem::take(&mut field));
                    i += 1;
                }
                '\r' if bytes.get(i + 1) == Some(&b'\n') => {
                    fields.push(field);
                    return Some((fields, i + 2));
                }
                '\n' => {
                    fields.push(field);
                    return Some((fields, i + 1));
                }
                _ => {
                    let ch = input[i..].chars().next().unwrap();
                    field.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
    }
    fields.push(field);
    Some((fields, bytes.len()))
}

/// Parses a whole CSV document into records.
fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some((rec, used)) = parse_record(rest) {
        // Skip completely empty trailing lines.
        if !(rec.len() == 1 && rec[0].is_empty()) {
            out.push(rec);
        }
        rest = &rest[used..];
        if rest.is_empty() {
            break;
        }
    }
    out
}

fn parse_value(cell: &str) -> Value {
    let t = cell.trim();
    if t.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        if f.is_finite() {
            return Value::Float(f);
        }
    }
    Value::Str(t.to_owned())
}

/// Builds a heterogeneous [`Dataset`] from per-source CSV documents.
#[derive(Debug, Default)]
pub struct CsvImporter {
    name: String,
    entity_column: Option<String>,
    /// (source name, csv text) in registration order.
    sources: Vec<(String, String)>,
    /// Optional canonical-class mapping: column name → class. Columns
    /// not listed get classes by distinct name.
    canon_by_name: FxHashMap<String, u32>,
}

impl CsvImporter {
    /// Creates an importer for a named dataset.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Names the column carrying ground-truth entity ids (must be present
    /// in every source that has labels; missing cells error).
    pub fn with_entity_column(mut self, column: impl Into<String>) -> Self {
        self.entity_column = Some(column.into());
        self
    }

    /// Declares that columns with these names denote the same canonical
    /// attribute class (e.g. `"title"`, `"name"`, `"film"` all map to
    /// class 0). Unmapped column names each get their own class — exact
    /// name equality across sources implies identity.
    pub fn with_canonical_classes<S: Into<String>, I: IntoIterator<Item = (S, u32)>>(
        mut self,
        classes: I,
    ) -> Self {
        for (name, class) in classes {
            self.canon_by_name.insert(name.into(), class);
        }
        self
    }

    /// Adds one source's CSV text (header row + data rows).
    pub fn add_source(mut self, name: impl Into<String>, csv: impl Into<String>) -> Self {
        self.sources.push((name.into(), csv.into()));
        self
    }

    /// Parses everything into a dataset.
    pub fn build(self) -> Result<Dataset> {
        let mut builder = DatasetBuilder::new(self.name.clone());
        // Canonical classes: explicit mapping wins, otherwise by name.
        let mut next_class = self
            .canon_by_name
            .values()
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        let mut class_of_name: FxHashMap<String, u32> = self.canon_by_name.clone();
        let mut entity_ids: FxHashMap<String, u32> = FxHashMap::default();
        let mut next_entity = 0u32;

        for (source_name, text) in &self.sources {
            let rows = parse_csv(text);
            let Some(header) = rows.first() else {
                return Err(HeraError::Serialization(format!(
                    "source {source_name}: empty CSV"
                )));
            };
            let entity_pos = self
                .entity_column
                .as_ref()
                .and_then(|c| header.iter().position(|h| h == c));
            if self.entity_column.is_some() && entity_pos.is_none() {
                return Err(HeraError::GroundTruth(format!(
                    "source {source_name}: entity column {:?} not in header",
                    self.entity_column.as_deref().unwrap()
                )));
            }
            let attr_cols: Vec<(usize, String)> = header
                .iter()
                .enumerate()
                .filter(|(i, _)| Some(*i) != entity_pos)
                .map(|(i, h)| (i, h.clone()))
                .collect();
            let schema_attrs: Vec<(String, CanonAttrId)> = attr_cols
                .iter()
                .map(|(_, h)| {
                    let class = *class_of_name.entry(h.clone()).or_insert_with(|| {
                        let c = next_class;
                        next_class += 1;
                        c
                    });
                    (h.clone(), CanonAttrId::new(class))
                })
                .collect();
            let schema = builder.add_schema(source_name.clone(), schema_attrs);

            for (rowno, row) in rows.iter().enumerate().skip(1) {
                if row.len() != header.len() {
                    return Err(HeraError::Serialization(format!(
                        "source {source_name} row {}: {} fields, header has {}",
                        rowno + 1,
                        row.len(),
                        header.len()
                    )));
                }
                let entity = match entity_pos {
                    Some(pos) => {
                        let key = row[pos].trim().to_owned();
                        if key.is_empty() {
                            return Err(HeraError::GroundTruth(format!(
                                "source {source_name} row {}: empty entity id",
                                rowno + 1
                            )));
                        }
                        *entity_ids.entry(key).or_insert_with(|| {
                            let e = next_entity;
                            next_entity += 1;
                            e
                        })
                    }
                    None => {
                        let e = next_entity;
                        next_entity += 1;
                        e
                    }
                };
                let values: Vec<Value> = attr_cols
                    .iter()
                    .map(|(i, _)| parse_value(&row[*i]))
                    .collect();
                builder.add_record(schema, values, EntityId::new(entity))?;
            }
        }
        Ok(builder.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RecordId;

    const CRM_A: &str = "entity,name,email,city\n\
        e1,John Bush,bush@gmail,LA\n\
        e2,\"Wong, Alice\",alice@x,NYC\n";
    const CRM_B: &str = "name,phone,entity\n\
        J. Bush,831-432,e1\n\
        A. Wong,555-123,e2\n";

    fn import() -> Dataset {
        CsvImporter::new("crm")
            .with_entity_column("entity")
            .add_source("CRM A", CRM_A)
            .add_source("CRM B", CRM_B)
            .build()
            .unwrap()
    }

    #[test]
    fn basic_import() {
        let ds = import();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.registry.len(), 2);
        assert_eq!(ds.truth.entity_count(), 2);
        // Entity column excluded from schemas.
        assert_eq!(ds.registry.schema(crate::SchemaId::new(0)).arity(), 3);
        assert_eq!(ds.registry.schema(crate::SchemaId::new(1)).arity(), 2);
        // Cross-source entity identity via shared keys.
        assert!(ds.truth.same_entity(RecordId::new(0), RecordId::new(2)));
        assert!(!ds.truth.same_entity(RecordId::new(0), RecordId::new(1)));
    }

    #[test]
    fn quoted_fields_and_embedded_commas() {
        let ds = import();
        assert_eq!(
            ds.record(RecordId::new(1)).values[0],
            Value::from("Wong, Alice")
        );
    }

    #[test]
    fn shared_column_names_share_classes() {
        let ds = import();
        let name_a = ds.attr_of_field(RecordId::new(0), 0);
        let name_b = ds.attr_of_field(RecordId::new(2), 0);
        assert!(ds.truth.same_attr(name_a, name_b));
        let email = ds.attr_of_field(RecordId::new(0), 1);
        assert!(!ds.truth.same_attr(name_a, email));
    }

    #[test]
    fn explicit_canonical_classes() {
        let ds = CsvImporter::new("t")
            .with_canonical_classes([("name", 0u32), ("full_name", 0u32)])
            .add_source("A", "name\nx\n")
            .add_source("B", "full_name\ny\n")
            .build()
            .unwrap();
        let a = ds.attr_of_field(RecordId::new(0), 0);
        let b = ds.attr_of_field(RecordId::new(1), 0);
        assert!(ds.truth.same_attr(a, b));
    }

    #[test]
    fn type_inference() {
        let ds = CsvImporter::new("t")
            .add_source("A", "a,b,c,d\n1984,3.5,text,\n")
            .build()
            .unwrap();
        let r = ds.record(RecordId::new(0));
        assert_eq!(r.values[0], Value::Int(1984));
        assert_eq!(r.values[1], Value::Float(3.5));
        assert_eq!(r.values[2], Value::from("text"));
        assert!(r.values[3].is_null());
    }

    #[test]
    fn escaped_quotes_and_crlf() {
        let csv = "a,b\r\n\"say \"\"hi\"\"\",2\r\n";
        let ds = CsvImporter::new("t").add_source("A", csv).build().unwrap();
        assert_eq!(
            ds.record(RecordId::new(0)).values[0],
            Value::from("say \"hi\"")
        );
    }

    #[test]
    fn newline_inside_quotes() {
        let csv = "a\n\"line1\nline2\"\n";
        let ds = CsvImporter::new("t").add_source("A", csv).build().unwrap();
        assert_eq!(
            ds.record(RecordId::new(0)).values[0],
            Value::from("line1\nline2")
        );
    }

    #[test]
    fn ragged_row_rejected() {
        let err = CsvImporter::new("t")
            .add_source("A", "a,b\n1\n")
            .build()
            .unwrap_err();
        assert!(matches!(err, HeraError::Serialization(_)));
    }

    #[test]
    fn missing_entity_column_rejected() {
        let err = CsvImporter::new("t")
            .with_entity_column("entity")
            .add_source("A", "a,b\n1,2\n")
            .build()
            .unwrap_err();
        assert!(matches!(err, HeraError::GroundTruth(_)));
    }

    #[test]
    fn unlabeled_import_gets_distinct_entities() {
        let ds = CsvImporter::new("t")
            .add_source("A", "a\nx\ny\n")
            .build()
            .unwrap();
        assert_eq!(ds.truth.entity_count(), 2);
    }
}
