//! Minimal JSON tree, parser, and writer.
//!
//! The workspace builds fully offline, so dataset (de)serialization is
//! hand-rolled here instead of depending on `serde_json`. The encoding of
//! each type mirrors what `serde`'s derived implementations produced for
//! the same structs (externally tagged enums, transparent id newtypes), so
//! datasets exported by earlier builds keep parsing.

use crate::error::{HeraError, Result};
use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object key, erroring with its name if absent.
    pub fn expect(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| HeraError::Serialization(format!("missing key {key:?}")))
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(type_error("array", other)),
        }
    }

    /// The payload if this is a string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(type_error("string", other)),
        }
    }

    /// The value as `u32` (ids, counters).
    pub fn as_u32(&self) -> Result<u32> {
        match self {
            Json::Int(i) => u32::try_from(*i)
                .map_err(|_| HeraError::Serialization(format!("{i} out of u32 range"))),
            other => Err(type_error("u32", other)),
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Json::Int(i) => Ok(*i),
            other => Err(type_error("i64", other)),
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(f) => Ok(*f),
            other => Err(type_error("number", other)),
        }
    }

    /// Renders compact JSON.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty JSON (two-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items, |out, item| {
                item.write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs, |out, (k, v)| {
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn type_error(expected: &str, got: &Json) -> HeraError {
    let kind = match got {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Int(_) => "integer",
        Json::Float(_) => "float",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    };
    HeraError::Serialization(format!("expected {expected}, got {kind}"))
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Round-trippable and distinguishable from integers.
        if f == f.trunc() && f.abs() < 1e15 {
            let _ = write!(out, "{f:.1}");
        } else {
            let _ = write!(out, "{f}");
        }
    } else {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: &[T],
    mut write_item: impl FnMut(&mut String, &T),
) {
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        write_item(out, item);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Parses a JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> HeraError {
        HeraError::Serialization(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar. The input arrived as a
                    // `&str`, so decoding only the next scalar's bytes is
                    // enough — validating the whole remaining tail here
                    // (as `from_utf8(&bytes[pos..])` would) turns parsing
                    // quadratic in document size.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.error("invalid UTF-8"))?
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char> {
        // self.pos is at the `u`.
        let hex4 = |p: &Self, start: usize| -> Result<u32> {
            let digits = p
                .bytes
                .get(start..start + 4)
                .ok_or_else(|| p.error("truncated \\u escape"))?;
            let s = std::str::from_utf8(digits).map_err(|_| p.error("bad \\u escape"))?;
            u32::from_str_radix(s, 16).map_err(|_| p.error("bad \\u escape"))
        };
        let hi = hex4(self, self.pos + 1)?;
        self.pos += 5;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect `\uXXXX` low half.
            if self.bytes.get(self.pos) != Some(&b'\\')
                || self.bytes.get(self.pos + 1) != Some(&b'u')
            {
                return Err(self.error("unpaired surrogate"));
            }
            let lo = hex4(self, self.pos + 2)?;
            self.pos += 6;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.error("bad low surrogate"));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| self.error("bad surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.error("bad \\u code point"))
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for src in ["null", "true", "false", "0", "-7", "1.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.to_string_compact()).unwrap(), v, "{src}");
        }
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("42.0").unwrap(), Json::Float(42.0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn int_float_distinction_survives_write() {
        // Whole floats render with a decimal point so they parse back as
        // floats — Value::Int vs Value::Float must not collapse.
        assert_eq!(Json::Float(2.0).to_string_compact(), "2.0");
        assert_eq!(Json::Int(2).to_string_compact(), "2");
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn i64_extremes_are_exact() {
        for i in [i64::MIN, i64::MAX, 0, -1] {
            let v = Json::Int(i).to_string_compact();
            assert_eq!(parse(&v).unwrap(), Json::Int(i));
        }
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}–🦀";
        let json = Json::Str(s.to_string()).to_string_compact();
        assert_eq!(parse(&json).unwrap(), Json::Str(s.to_string()));
        // Classic escapes and surrogate pairs parse.
        assert_eq!(parse(r#""A🦀""#).unwrap(), Json::Str("A🦀".to_string()));
    }

    #[test]
    fn nested_structures() {
        let src = r#"{"a": [1, 2, {"b": null}], "c": {"d": [true, false]}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_arr().unwrap(),
            &[Json::Bool(true), Json::Bool(false)]
        );
        // Pretty output re-parses to the same tree.
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        match &v {
            Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn errors_are_reported() {
        for bad in ["", "{", "[1,", "\"abc", "tru", "{\"a\" 1}", "1 2", "01x"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let v = parse("[]").unwrap();
        assert!(v.as_str().is_err());
        assert!(v.expect("k").is_err());
    }
}
