//! R-Swoosh (Benjelloun et al., *Swoosh: a generic approach to entity
//! resolution*, VLDBJ 2009).
//!
//! The generic ER algorithm over black-box `match` and `merge` functions:
//! keep a processed set `I′`; for each record `r` from the input buffer
//! `I`, scan `I′` for a match — if none, `r` joins `I′`; if `r′` matches,
//! remove `r′` from `I′` and push `merge(r, r′)` back onto `I`. Under ICAR
//! properties this computes the unique merge closure.
//!
//! `match(r, r′)` here is `similarity ≥ δ` with the shared flat-record
//! scoring; candidate filtering reuses the similarity-join adjacency so
//! the scan of `I′` touches only plausible partners.

use crate::flat::{candidate_adjacency, FlatSuper};
use crate::Resolver;
use hera_sim::ValueSimilarity;
use hera_types::Dataset;
use rustc_hash::FxHashSet;
use std::collections::VecDeque;

/// R-Swoosh configuration: match threshold δ, value threshold ξ.
#[derive(Debug, Clone, Copy)]
pub struct RSwoosh {
    delta: f64,
    xi: f64,
}

impl RSwoosh {
    /// Creates a resolver with match threshold `delta` and field
    /// threshold `xi`.
    pub fn new(delta: f64, xi: f64) -> Self {
        Self { delta, xi }
    }
}

impl Resolver for RSwoosh {
    fn resolve(&self, ds: &Dataset, metric: &dyn ValueSimilarity) -> Vec<Vec<u32>> {
        let adj = candidate_adjacency(ds, metric, self.xi);
        // Per-super candidate partner set = union of members' adjacency.
        let partners = |s: &FlatSuper| -> FxHashSet<u32> {
            let mut out = FxHashSet::default();
            for &m in &s.members {
                if let Some(ps) = adj.get(&m) {
                    out.extend(ps.iter().copied());
                }
            }
            out
        };

        let mut input: VecDeque<FlatSuper> = (0..ds.len() as u32)
            .map(|rid| FlatSuper::from_record(ds, rid))
            .collect();
        let mut output: Vec<FlatSuper> = Vec::new();

        while let Some(r) = input.pop_front() {
            let r_partners = partners(&r);
            let matched = output.iter().position(|r2| {
                r2.members.iter().any(|m| r_partners.contains(m))
                    && r.similarity(r2, metric, self.xi) >= self.delta
            });
            match matched {
                None => output.push(r),
                Some(idx) => {
                    let r2 = output.swap_remove(idx);
                    let mut merged = r;
                    merged.absorb(&r2);
                    input.push_back(merged);
                }
            }
        }

        output.into_iter().map(|s| s.members).collect()
    }

    fn name(&self) -> &'static str {
        "R-Swoosh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_sim::TypeDispatch;
    use hera_types::{CanonAttrId, DatasetBuilder, EntityId, Value};

    fn homo(rows: &[(&str, &str)]) -> Dataset {
        let mut b = DatasetBuilder::new("h");
        let c = CanonAttrId::new;
        let s = b.add_schema("T", [("name", c(0)), ("mail", c(1))]);
        for (i, (name, mail)) in rows.iter().enumerate() {
            b.add_record(
                s,
                vec![Value::from(*name), Value::from(*mail)],
                EntityId::new(i as u32 / 2),
            )
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn merges_obvious_duplicates() {
        let ds = homo(&[
            ("John Bush", "bush@gmail"),
            ("John Bush", "bush@gmail"),
            ("Alice Wong", "alice@x"),
            ("Alice Wong", "alice@x"),
        ]);
        let metric = TypeDispatch::paper_default();
        let mut clusters = RSwoosh::new(0.8, 0.5).resolve(&ds, &metric);
        clusters.sort();
        assert_eq!(clusters, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn transitive_merge_closure() {
        // a ≈ b, b ≈ c, but a ≉ c directly: Swoosh's re-queue of merge
        // results must still unite all three (the merged record carries
        // both variants).
        let ds = homo(&[
            ("Jonathan Bush", "bush@gmail"),
            ("Jonathan Bush", "bush@gmial"),
            ("J. Bush", "bush@gmial"),
            ("Zz Top", "z@z"),
        ]);
        let metric = TypeDispatch::paper_default();
        // Average-best linkage dampens merged-record similarities, so the
        // closure threshold sits below the base-pair threshold here.
        let clusters = RSwoosh::new(0.4, 0.4).resolve(&ds, &metric);
        let big = clusters.iter().find(|c| c.contains(&0)).unwrap();
        assert!(big.contains(&1));
        assert!(big.contains(&2), "clusters: {clusters:?}");
        assert!(!big.contains(&3));
    }

    #[test]
    fn no_matches_means_all_singletons() {
        let ds = homo(&[("aaa", "1"), ("bbb", "2"), ("ccc", "3"), ("ddd", "4")]);
        let metric = TypeDispatch::paper_default();
        let clusters = RSwoosh::new(0.9, 0.9).resolve(&ds, &metric);
        assert_eq!(clusters.len(), 4);
    }
}
