//! Flat (homogeneous) super records and the shared record similarity.

use hera_join::{JoinConfig, SimilarityJoin};
use hera_sim::ValueSimilarity;
use hera_types::{Dataset, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// A merged homogeneous record: fields stay positionally aligned with the
/// (single) target schema; each field accumulates the values of all
/// members.
#[derive(Debug, Clone)]
pub struct FlatSuper {
    /// One value-set per target-schema position.
    pub fields: Vec<Vec<Value>>,
    /// Base records folded in (ascending).
    pub members: Vec<u32>,
}

impl FlatSuper {
    /// Lifts base record `rid` of a homogeneous dataset.
    pub fn from_record(ds: &Dataset, rid: u32) -> Self {
        let rec = &ds.records[rid as usize];
        Self {
            fields: rec
                .values
                .iter()
                .map(|v| {
                    if v.is_null() {
                        Vec::new()
                    } else {
                        vec![v.clone()]
                    }
                })
                .collect(),
            members: vec![rid],
        }
    }

    /// Number of fields holding at least one value.
    pub fn informative_size(&self) -> usize {
        self.fields.iter().filter(|f| !f.is_empty()).count()
    }

    /// Merges `other` into `self`, position-wise, deduplicating equal
    /// values.
    pub fn absorb(&mut self, other: &FlatSuper) {
        debug_assert_eq!(self.fields.len(), other.fields.len());
        for (mine, theirs) in self.fields.iter_mut().zip(&other.fields) {
            for v in theirs {
                if !mine.iter().any(|x| x.same(v)) {
                    mine.push(v.clone());
                }
            }
        }
        self.members.extend(&other.members);
        self.members.sort_unstable();
        self.members.dedup();
    }

    /// Record similarity aligned with Definition 5, specialized for the
    /// positionally-matched homogeneous case: per-position field
    /// similarity is the max value-pair similarity; positions scoring
    /// `≥ ξ` accumulate; normalize by `min(|R_i|, |R_j|)`.
    ///
    /// Under one target schema every record *has* all target fields (some
    /// hold only nulls), so Definition 5's `|R|` is the schema arity.
    /// Normalizing by non-null counts instead lets records that retain
    /// only one or two values after exchange match anything sharing those
    /// values, and the merge closure then collapses the dataset into one
    /// cluster — an instructive failure, but not the baselines' intended
    /// semantics.
    pub fn similarity(&self, other: &FlatSuper, metric: &dyn ValueSimilarity, xi: f64) -> f64 {
        let mut total = 0.0;
        for (a, b) in self.fields.iter().zip(&other.fields) {
            let s = field_sim(a, b, metric);
            if s >= xi {
                total += s;
            }
        }
        let denom = self.fields.len().min(other.fields.len()).max(1);
        total / denom as f64
    }
}

/// Field similarity for flat supers: symmetric average-best linkage.
///
/// On base records (single values per field) this is exactly Definition
/// 3's max; on merged records each value contributes its best partner in
/// the other field, averaged over both sides — the average-linkage
/// discipline agglomerative ER implementations (e.g. Bhattacharya–Getoor)
/// use in practice. Pure max linkage makes R-Swoosh's transitive merge
/// closure snowball: a cluster that has accumulated thirty distributor
/// values matches *any* record on that field, and the output degenerates
/// into one cluster.
fn field_sim(a: &[Value], b: &[Value], metric: &dyn ValueSimilarity) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for va in a {
        let mut best = 0.0f64;
        for vb in b {
            let s = metric.sim(va, vb);
            if s > best {
                best = s;
            }
        }
        total += best;
    }
    for vb in b {
        let mut best = 0.0f64;
        for va in a {
            let s = metric.sim(va, vb);
            if s > best {
                best = s;
            }
        }
        total += best;
    }
    total / (a.len() + b.len()) as f64
}

/// Candidate record pairs for a homogeneous dataset: pairs sharing at
/// least one value pair with `simv ≥ ξ`, via the same similarity join
/// HERA's index uses. Returned as an adjacency map over base rids.
pub fn candidate_adjacency(
    ds: &Dataset,
    metric: &dyn ValueSimilarity,
    xi: f64,
) -> FxHashMap<u32, FxHashSet<u32>> {
    let pairs = SimilarityJoin::new(JoinConfig::new(xi), metric).join_dataset(ds);
    let mut adj: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();
    for p in pairs {
        adj.entry(p.a.rid).or_default().insert(p.b.rid);
        adj.entry(p.b.rid).or_default().insert(p.a.rid);
    }
    adj
}

/// All candidate rid pairs `(i, j)` with `i < j`, sorted.
pub fn candidate_pairs(adj: &FxHashMap<u32, FxHashSet<u32>>) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (&i, partners) in adj {
        for &j in partners {
            if i < j {
                out.push((i, j));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_sim::TypeDispatch;
    use hera_types::{motivating_example, CanonAttrId, DatasetBuilder, EntityId};

    fn homo() -> Dataset {
        let mut b = DatasetBuilder::new("h");
        let c = CanonAttrId::new;
        let s = b.add_schema("T", [("name", c(0)), ("city", c(1))]);
        let v = Value::from;
        b.add_record(s, vec![v("John Bush"), v("LA")], EntityId::new(0))
            .unwrap();
        b.add_record(s, vec![v("J. Bush"), Value::Null], EntityId::new(0))
            .unwrap();
        b.add_record(s, vec![v("Alice Wong"), v("NYC")], EntityId::new(1))
            .unwrap();
        b.build()
    }

    #[test]
    fn lift_and_similarity() {
        let ds = homo();
        let metric = TypeDispatch::paper_default();
        let a = FlatSuper::from_record(&ds, 0);
        let b = FlatSuper::from_record(&ds, 1);
        let c = FlatSuper::from_record(&ds, 2);
        assert_eq!(a.informative_size(), 2);
        assert_eq!(b.informative_size(), 1);
        // Names overlap; the null city contributes nothing and the
        // arity-2 denominator halves the name similarity.
        let sim_ab = a.similarity(&b, &metric, 0.3);
        assert!(sim_ab >= 0.2, "got {sim_ab}");
        let sim_ac = a.similarity(&c, &metric, 0.3);
        assert!(sim_ac < sim_ab);
    }

    #[test]
    fn absorb_merges_and_dedupes() {
        let ds = homo();
        let mut a = FlatSuper::from_record(&ds, 0);
        let b = FlatSuper::from_record(&ds, 1);
        a.absorb(&b);
        assert_eq!(a.members, vec![0, 1]);
        assert_eq!(a.fields[0].len(), 2); // two name variants
        assert_eq!(a.fields[1].len(), 1); // null contributed nothing
                                          // Absorbing the same record again changes nothing.
        let before = a.fields.clone();
        a.absorb(&b);
        assert_eq!(a.fields, before);
    }

    #[test]
    fn symmetry() {
        let ds = homo();
        let metric = TypeDispatch::paper_default();
        let a = FlatSuper::from_record(&ds, 0);
        let b = FlatSuper::from_record(&ds, 1);
        assert!((a.similarity(&b, &metric, 0.3) - b.similarity(&a, &metric, 0.3)).abs() < 1e-12);
    }

    #[test]
    fn adjacency_on_example() {
        let ds = motivating_example();
        let metric = TypeDispatch::paper_default();
        let adj = candidate_adjacency(&ds, &metric, 0.5);
        let pairs = candidate_pairs(&adj);
        assert!(!pairs.is_empty());
        for (i, j) in pairs {
            assert!(i < j);
        }
    }
}
