//! The nest-loop verifier of Fig. 7(a): record similarity with four
//! nested loops and no index.
//!
//! This is the foil for Proposition 4's claim that the index cuts record
//! similarity computation "by three orders of magnitude": it compares
//! every value of every field of `R_i` against every value of every field
//! of `R_j`, rebuilds the similar-field-pair set from scratch, and only
//! then runs the same bipartite matching the indexed verifier uses.
//! Ablation A1 benchmarks the two side by side.

use hera_core::SuperRecord;
use hera_matching::{greedy_matching, max_weight_matching, BipartiteGraph};
use hera_sim::ValueSimilarity;

/// Index-free record-similarity computation.
#[derive(Debug, Clone, Copy)]
pub struct NestLoopVerifier {
    xi: f64,
    use_kuhn_munkres: bool,
}

impl NestLoopVerifier {
    /// Creates a verifier with value threshold ξ.
    pub fn new(xi: f64) -> Self {
        Self {
            xi,
            use_kuhn_munkres: true,
        }
    }

    /// Switches the matcher to greedy (for apples-to-apples ablations).
    pub fn with_greedy(mut self) -> Self {
        self.use_kuhn_munkres = false;
        self
    }

    /// `Sim(left, right)` by brute force: the four loops of Fig. 7(a)
    /// (fields × fields × values × values), then maximum-weight matching
    /// over the similar field pairs.
    pub fn similarity(
        &self,
        left: &SuperRecord,
        right: &SuperRecord,
        metric: &dyn ValueSimilarity,
    ) -> f64 {
        let mut graph = BipartiteGraph::new();
        for (lf, lfield) in left.fields.iter().enumerate() {
            for (rf, rfield) in right.fields.iter().enumerate() {
                let mut best = 0.0f64;
                for va in &lfield.values {
                    for vb in &rfield.values {
                        let s = metric.sim(va, vb);
                        if s > best {
                            best = s;
                        }
                    }
                }
                if best >= self.xi {
                    graph.add_edge(lf as u32, rf as u32, best);
                }
            }
        }
        let matching = if self.use_kuhn_munkres {
            max_weight_matching(&graph)
        } else {
            greedy_matching(&graph)
        };
        let denom = left.informative_size().min(right.informative_size()).max(1) as f64;
        matching.weight / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_core::{InstanceVerifier, SuperRecord};
    use hera_index::ValuePairIndex;
    use hera_join::{JoinConfig, SimilarityJoin};
    use hera_sim::TypeDispatch;
    use hera_types::motivating_example;

    /// The nest-loop similarity must agree exactly with the indexed
    /// verifier — same definition, different plumbing.
    #[test]
    fn agrees_with_indexed_verifier() {
        let ds = motivating_example();
        let metric = TypeDispatch::paper_default();
        for xi in [0.3, 0.5, 0.7] {
            let pairs = SimilarityJoin::new(JoinConfig::new(xi), &metric).join_dataset(&ds);
            let index = ValuePairIndex::build(pairs);
            let supers: Vec<SuperRecord> = ds
                .iter()
                .map(|r| SuperRecord::from_record(&ds, r))
                .collect();
            let indexed = InstanceVerifier::new(&metric, xi, true);
            let nest = NestLoopVerifier::new(xi);
            for i in 0..ds.len() {
                for j in (i + 1)..ds.len() {
                    let a = indexed
                        .verify(&index, &supers[i], &supers[j], &ds.registry, None)
                        .sim;
                    let b = nest.similarity(&supers[i], &supers[j], &metric);
                    assert!(
                        (a - b).abs() < 1e-9,
                        "pair ({i},{j}) at xi={xi}: indexed {a} vs nest-loop {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_never_beats_km() {
        let ds = motivating_example();
        let metric = TypeDispatch::paper_default();
        let supers: Vec<SuperRecord> = ds
            .iter()
            .map(|r| SuperRecord::from_record(&ds, r))
            .collect();
        let km = NestLoopVerifier::new(0.3);
        let greedy = NestLoopVerifier::new(0.3).with_greedy();
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                assert!(
                    greedy.similarity(&supers[i], &supers[j], &metric)
                        <= km.similarity(&supers[i], &supers[j], &metric) + 1e-9
                );
            }
        }
    }
}
