//! Correlation clustering via KwikCluster (Ailon, Charikar & Newman,
//! *Aggregating inconsistent information*, JACM 2008) — the paper's "CC".
//!
//! The similarity graph has a `+` edge between records with
//! `Sim ≥ δ` and `−` otherwise; KwikCluster repeatedly picks a random
//! pivot and clusters it with its unassigned `+`-neighbors, a randomized
//! 3-approximation of minimizing disagreements.

use crate::flat::{candidate_adjacency, candidate_pairs, FlatSuper};
use crate::Resolver;
use hera_sim::ValueSimilarity;
use hera_types::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rustc_hash::{FxHashMap, FxHashSet};

/// KwikCluster configuration.
#[derive(Debug, Clone, Copy)]
pub struct CorrelationClustering {
    delta: f64,
    xi: f64,
    seed: u64,
}

impl CorrelationClustering {
    /// Creates a resolver; `seed` fixes the pivot order (KwikCluster is
    /// randomized).
    pub fn new(delta: f64, xi: f64, seed: u64) -> Self {
        Self { delta, xi, seed }
    }
}

impl Resolver for CorrelationClustering {
    fn resolve(&self, ds: &Dataset, metric: &dyn ValueSimilarity) -> Vec<Vec<u32>> {
        let n = ds.len() as u32;
        // `+` edges: candidate pairs whose record similarity clears δ.
        // Pairs outside the candidate adjacency share no similar value and
        // cannot clear any useful δ, so they are `−` by construction.
        let supers: Vec<FlatSuper> = (0..n).map(|r| FlatSuper::from_record(ds, r)).collect();
        let adj = candidate_adjacency(ds, metric, self.xi);
        let mut positive: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();
        for (i, j) in candidate_pairs(&adj) {
            if supers[i as usize].similarity(&supers[j as usize], metric, self.xi) >= self.delta {
                positive.entry(i).or_default().insert(j);
                positive.entry(j).or_default().insert(i);
            }
        }

        // KwikCluster over a seeded random pivot order.
        let mut order: Vec<u32> = (0..n).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        order.shuffle(&mut rng);
        let mut assigned = vec![false; n as usize];
        let mut clusters: Vec<Vec<u32>> = Vec::new();
        for pivot in order {
            if assigned[pivot as usize] {
                continue;
            }
            assigned[pivot as usize] = true;
            let mut cluster = vec![pivot];
            if let Some(neigh) = positive.get(&pivot) {
                let mut ns: Vec<u32> = neigh
                    .iter()
                    .copied()
                    .filter(|&x| !assigned[x as usize])
                    .collect();
                ns.sort_unstable();
                for x in ns {
                    assigned[x as usize] = true;
                    cluster.push(x);
                }
            }
            cluster.sort_unstable();
            clusters.push(cluster);
        }
        clusters.sort();
        clusters
    }

    fn name(&self) -> &'static str {
        "CC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_sim::TypeDispatch;
    use hera_types::{CanonAttrId, DatasetBuilder, EntityId, Value};

    fn homo(names: &[&str]) -> Dataset {
        let mut b = DatasetBuilder::new("h");
        let s = b.add_schema("T", [("name", CanonAttrId::new(0))]);
        for (i, name) in names.iter().enumerate() {
            b.add_record(s, vec![Value::from(*name)], EntityId::new(i as u32))
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn clusters_positive_cliques() {
        let ds = homo(&["abcdef", "abcdef", "abcdef", "zzzzzz"]);
        let metric = TypeDispatch::paper_default();
        let clusters = CorrelationClustering::new(0.9, 0.5, 1).resolve(&ds, &metric);
        assert_eq!(clusters, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn pivot_order_is_seeded() {
        // A "star": record 1 similar to 0 and 2, but 0 ≁ 2. Pivoting on 1
        // lumps all three; pivoting on 0 first splits {0,1} | {2}.
        let ds = homo(&["abcdxx", "abcdef", "yycdef"]);
        let metric = TypeDispatch::paper_default();
        let a = CorrelationClustering::new(0.45, 0.3, 1).resolve(&ds, &metric);
        let b = CorrelationClustering::new(0.45, 0.3, 1).resolve(&ds, &metric);
        assert_eq!(a, b, "same seed, same clustering");
        // All records covered exactly once regardless of seed.
        for seed in 0..10 {
            let c = CorrelationClustering::new(0.45, 0.3, seed).resolve(&ds, &metric);
            let mut all: Vec<u32> = c.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2]);
        }
    }

    #[test]
    fn empty_dataset() {
        let ds = homo(&[]);
        let metric = TypeDispatch::paper_default();
        assert!(CorrelationClustering::new(0.5, 0.5, 1)
            .resolve(&ds, &metric)
            .is_empty());
    }
}
