//! The paper's comparators (§VI-C), implemented from scratch:
//!
//! * [`RSwoosh`] — the generic match-and-merge ER of Benjelloun et al.
//!   \[4\]: a buffer-and-output loop that merges any matching pair and
//!   re-queues the merge result until no record in the output matches.
//! * [`CorrelationClustering`] — "CC" \[6\]: the KwikCluster pivot
//!   algorithm over the thresholded similarity graph (a 3-approximation
//!   of correlation clustering).
//! * [`CollectiveEr`] — "CR" \[5\]: greedy agglomerative clustering in the
//!   spirit of Bhattacharya & Getoor, scoring cluster pairs by a blend of
//!   attribute similarity and relational (shared co-occurring value)
//!   similarity.
//! * [`NestLoopVerifier`] — the four-nested-loops record similarity of
//!   Fig. 7(a): the foil for the paper's "three orders of magnitude"
//!   index speedup (ablation A1).
//!
//! All three clustering baselines consume *homogeneous* datasets (one
//! schema, the output of `hera-exchange`) and share one record-similarity
//! definition ([`flat::FlatSuper::similarity`]) aligned with HERA's
//! Definition 5, so Fig. 11 compares algorithms, not scoring functions.
//! Candidate pairs come from the same similarity join HERA uses — every
//! system gets the same blocking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flat;
mod kwik;
mod nestloop;
mod relational;
mod rswoosh;

pub use kwik::CorrelationClustering;
pub use nestloop::NestLoopVerifier;
pub use relational::CollectiveEr;
pub use rswoosh::RSwoosh;

use hera_sim::ValueSimilarity;
use hera_types::Dataset;

/// Common interface: a baseline resolves a homogeneous dataset into
/// clusters of base-record ids.
pub trait Resolver {
    /// Runs the algorithm; returns disjoint clusters covering all records.
    fn resolve(&self, ds: &Dataset, metric: &dyn ValueSimilarity) -> Vec<Vec<u32>>;

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_eval::PairMetrics;
    use hera_sim::TypeDispatch;
    use hera_types::{motivating_example, Dataset};

    fn exchanged_example() -> Dataset {
        let ds = motivating_example();
        // Full-information exchange: all 7 distinct attributes.
        let plan = hera_exchange::plan_exchange(&ds, 1.0, 1);
        hera_exchange::chase(&ds, &plan, "fig1-full")
    }

    /// With the *full* target schema (no information loss), every
    /// baseline should resolve the easy pairs; the motivating example's
    /// `description difference` pair (r1, r2) stays hard.
    #[test]
    fn baselines_run_on_exchanged_example() {
        let ds = exchanged_example();
        let metric = TypeDispatch::paper_default();
        for resolver in [
            Box::new(RSwoosh::new(0.5, 0.5)) as Box<dyn Resolver>,
            Box::new(CorrelationClustering::new(0.5, 0.5, 7)),
            Box::new(CollectiveEr::new(0.5, 0.5, 0.25)),
        ] {
            let clusters = resolver.resolve(&ds, &metric);
            let total: usize = clusters.iter().map(|c| c.len()).sum();
            assert_eq!(total, ds.len(), "{} dropped records", resolver.name());
            let m = PairMetrics::score(&clusters, &ds.truth);
            assert!(m.recall() > 0.0, "{} found nothing: {m}", resolver.name());
        }
    }

    /// On data exchanged with heavy information loss, HERA (on the
    /// heterogeneous originals) must beat every baseline (on the
    /// exchanged data) — the paper's headline claim, tested end-to-end on
    /// a generated dataset in `tests/`.
    #[test]
    fn information_loss_hurts_baselines() {
        let ds = motivating_example();
        let (lossy, plan) = hera_exchange::exchange_small(&ds, 7);
        assert!(plan.dropped_value_count > 0);
        let metric = TypeDispatch::paper_default();
        let swoosh = RSwoosh::new(0.5, 0.5).resolve(&lossy, &metric);
        let hera = hera_core::Hera::builder(hera_core::HeraConfig::paper_example())
            .build()
            .run(&ds)
            .unwrap()
            .clusters();
        let m_swoosh = PairMetrics::score(&swoosh, &lossy.truth);
        let m_hera = PairMetrics::score(&hera, &ds.truth);
        assert!(
            m_hera.f1() >= m_swoosh.f1(),
            "HERA {m_hera} should not lose to R-Swoosh {m_swoosh} under information loss"
        );
    }
}
