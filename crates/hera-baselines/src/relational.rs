//! Collective entity resolution (Bhattacharya & Getoor, TKDD 2007) —
//! the paper's "CR".
//!
//! Greedy agglomerative clustering where the affinity of two clusters
//! blends **attribute** similarity (the shared flat-record score) with
//! **relational** similarity: the Jaccard overlap of the exact values the
//! clusters co-occur with (shared directors, studios, phone numbers …).
//! Relational evidence lets two records with weak direct attribute
//! overlap merge because their *contexts* agree — the collective effect
//! of the original paper, adapted from its author/co-author domain to
//! generic records.

use crate::flat::{candidate_adjacency, candidate_pairs, FlatSuper};
use crate::Resolver;
use hera_sim::ValueSimilarity;
use hera_types::{Dataset, Value};
use rustc_hash::{FxHashMap, FxHashSet};

/// Collective-ER configuration.
#[derive(Debug, Clone, Copy)]
pub struct CollectiveEr {
    delta: f64,
    xi: f64,
    /// Relational blend weight α ∈ [0, 1]: affinity =
    /// `(1 − α)·attr + α·relational`.
    alpha: f64,
}

impl CollectiveEr {
    /// Creates a resolver.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `[0, 1]`.
    pub fn new(delta: f64, xi: f64, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        Self { delta, xi, alpha }
    }

    /// The value "context" of a cluster: hashes of all its exact values.
    fn context(&self, s: &FlatSuper) -> FxHashSet<u64> {
        use std::hash::{Hash, Hasher};
        let mut out = FxHashSet::default();
        for field in &s.fields {
            for v in field {
                let mut h = rustc_hash::FxHasher::default();
                Value::hash(v, &mut h);
                out.insert(h.finish());
            }
        }
        out
    }

    fn relational(&self, a: &FxHashSet<u64>, b: &FxHashSet<u64>) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection(b).count();
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }
}

impl Resolver for CollectiveEr {
    fn resolve(&self, ds: &Dataset, metric: &dyn ValueSimilarity) -> Vec<Vec<u32>> {
        let n = ds.len() as u32;
        let adj = candidate_adjacency(ds, metric, self.xi);

        // Cluster state: rid → representative; representative → super.
        let mut rep: Vec<u32> = (0..n).collect();
        let mut supers: FxHashMap<u32, FlatSuper> =
            (0..n).map(|r| (r, FlatSuper::from_record(ds, r))).collect();

        fn find(rep: &mut [u32], mut x: u32) -> u32 {
            while rep[x as usize] != x {
                rep[x as usize] = rep[rep[x as usize] as usize];
                x = rep[x as usize];
            }
            x
        }

        // Greedy rounds: evaluate affinities of candidate cluster pairs,
        // merge everything ≥ δ (best-first), repeat until stable — the
        // iterative propagation that makes the method "collective":
        // merges enrich contexts, which unlock further merges.
        loop {
            let mut scored: Vec<(f64, u32, u32)> = Vec::new();
            let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
            for (i, j) in candidate_pairs(&adj) {
                let (ri, rj) = (find(&mut rep, i), find(&mut rep, j));
                if ri == rj {
                    continue;
                }
                let key = (ri.min(rj), ri.max(rj));
                if !seen.insert(key) {
                    continue;
                }
                let (a, b) = (&supers[&key.0], &supers[&key.1]);
                let attr = a.similarity(b, metric, self.xi);
                let rel = self.relational(&self.context(a), &self.context(b));
                let affinity = (1.0 - self.alpha) * attr + self.alpha * rel;
                if affinity >= self.delta {
                    scored.push((affinity, key.0, key.1));
                }
            }
            if scored.is_empty() {
                break;
            }
            scored.sort_by(|x, y| {
                y.0.partial_cmp(&x.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| (x.1, x.2).cmp(&(y.1, y.2)))
            });
            let mut merged_any = false;
            for (_, i, j) in scored {
                let (ri, rj) = (find(&mut rep, i), find(&mut rep, j));
                if ri == rj {
                    continue;
                }
                let (keep, fold) = (ri.min(rj), ri.max(rj));
                rep[fold as usize] = keep;
                let folded = supers.remove(&fold).expect("cluster exists");
                supers
                    .get_mut(&keep)
                    .expect("cluster exists")
                    .absorb(&folded);
                merged_any = true;
            }
            if !merged_any {
                break;
            }
        }

        let mut clusters: Vec<Vec<u32>> = supers.into_values().map(|s| s.members).collect();
        clusters.sort();
        clusters
    }

    fn name(&self) -> &'static str {
        "CR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_sim::TypeDispatch;
    use hera_types::{CanonAttrId, DatasetBuilder, EntityId};

    fn homo(rows: &[(&str, &str, &str)]) -> Dataset {
        let mut b = DatasetBuilder::new("h");
        let c = CanonAttrId::new;
        let s = b.add_schema("T", [("name", c(0)), ("director", c(1)), ("studio", c(2))]);
        for (i, (n, d, st)) in rows.iter().enumerate() {
            b.add_record(
                s,
                vec![Value::from(*n), Value::from(*d), Value::from(*st)],
                EntityId::new(i as u32),
            )
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn relational_evidence_helps() {
        // Records 0 and 1: weakly similar names, but identical director
        // AND studio. Pure attribute sim at a high δ misses them; the
        // relational blend finds them.
        let rows = [
            ("Dawn Empire", "Akira Kurosawa", "Toho"),
            ("Dawn Empre II", "Akira Kurosawa", "Toho"),
            ("Frost Garden", "Sofia Lee", "A24"),
        ];
        let ds = homo(&rows);
        let metric = TypeDispatch::paper_default();
        let with_rel = CollectiveEr::new(0.7, 0.4, 0.3).resolve(&ds, &metric);
        let zero_alpha = CollectiveEr::new(0.99, 0.4, 0.0).resolve(&ds, &metric);
        let together = |cs: &Vec<Vec<u32>>| cs.iter().any(|c| c.contains(&0) && c.contains(&1));
        assert!(together(&with_rel), "{with_rel:?}");
        assert!(!together(&zero_alpha));
    }

    #[test]
    fn partition_is_total() {
        let rows = [
            ("aa bb", "x y", "s1"),
            ("aa bb", "x y", "s1"),
            ("cc dd", "z w", "s2"),
        ];
        let ds = homo(&rows);
        let metric = TypeDispatch::paper_default();
        let clusters = CollectiveEr::new(0.5, 0.5, 0.25).resolve(&ds, &metric);
        let mut all: Vec<u32> = clusters.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_bounds() {
        CollectiveEr::new(0.5, 0.5, 1.5);
    }
}
