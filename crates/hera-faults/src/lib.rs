//! Deterministic fault injection for HERA's IO edges.
//!
//! Durability claims are only as good as the failure testing behind them.
//! This crate provides the three pieces the chaos harness is built from:
//!
//! * **[`FaultPlan`]** — a *reproducible schedule* of which named
//!   failpoint fires on which hit. A plan is plain data (serialized via
//!   [`hera_types::json`]), so any chaos failure can be replayed exactly
//!   from its plan file (`hera-cli faults replay`). Random plans are
//!   derived from a seed with a self-contained splitmix64 generator —
//!   same seed, same plan, on every host.
//! * **[`FaultInjector`]** — the handle threaded through every IO edge
//!   (`hera-store` snapshot writes/reads, the `hera-obs` file sink). Each
//!   edge names its failpoint ([`points`]) and asks the injector whether
//!   *this* hit fires. A disabled injector ([`FaultInjector::disabled`],
//!   the default everywhere) is a single `Option` branch — production
//!   paths pay nothing.
//! * **[`retry`]/[`BackoffPolicy`]** — capped exponential backoff with an
//!   injectable [`Clock`], so robustness code (checkpoint writes retry
//!   transient IO errors) is unit-testable without real sleeps.
//!
//! The injector never fires spontaneously: hits are counted per
//! failpoint in call order, and a rule fires on exactly the hit indices
//! its plan lists. Because HERA's pipelines drive their IO edges
//! deterministically, a (plan, dataset, config) triple reproduces the
//! same fault sequence every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hera_types::json::Json;
use hera_types::{HeraError, Result};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Failpoint names, one per instrumented IO edge.
///
/// A failpoint name is a stable identifier: plans reference edges by
/// these strings, so renaming one is a format change.
pub mod points {
    /// `hera-store`: creating the `.tmp` sibling of a snapshot write.
    pub const STORE_WRITE_CREATE: &str = "store.write.create";
    /// `hera-store`: writing the snapshot bytes (supports
    /// [`FaultKind::Torn`](super::FaultKind::Torn) — a partial write
    /// followed by failure, simulating a crash mid-write).
    pub const STORE_WRITE_WRITE: &str = "store.write.write";
    /// `hera-store`: fsyncing the `.tmp` file before the rename.
    pub const STORE_WRITE_SYNC: &str = "store.write.sync";
    /// `hera-store`: renaming the `.tmp` file over the destination.
    pub const STORE_WRITE_RENAME: &str = "store.write.rename";
    /// `hera-store`: fsyncing the parent directory after the rename (the
    /// crash-consistency step that makes the rename itself durable).
    pub const STORE_WRITE_DIRSYNC: &str = "store.write.dirsync";
    /// `hera-store`: reading a snapshot file (supports
    /// [`FaultKind::Corrupt`](super::FaultKind::Corrupt) — the read
    /// succeeds but a byte is flipped, simulating bit rot).
    pub const STORE_READ: &str = "store.read";
    /// `hera-obs`: appending a line to the journal sink (fires sink
    /// degradation: the recorder downgrades to a null sink).
    pub const OBS_SINK_WRITE: &str = "obs.sink.write";

    /// Every failpoint, for plan generators and documentation.
    pub const ALL: [&str; 7] = [
        STORE_WRITE_CREATE,
        STORE_WRITE_WRITE,
        STORE_WRITE_SYNC,
        STORE_WRITE_RENAME,
        STORE_WRITE_DIRSYNC,
        STORE_READ,
        OBS_SINK_WRITE,
    ];
}

/// What happens when a failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails outright with an injected IO error.
    Error,
    /// A write stops after `keep_percent`% of its bytes and then fails —
    /// the on-disk state a crash mid-write leaves behind. Only write
    /// edges honor the partial bytes; elsewhere this degrades to
    /// [`FaultKind::Error`].
    Torn {
        /// Percentage of the payload bytes that reach the file (0–100).
        keep_percent: u8,
    },
    /// A read completes but one byte of the returned buffer is flipped
    /// (simulated bit rot). Only read edges can corrupt; elsewhere this
    /// degrades to [`FaultKind::Error`].
    Corrupt,
}

impl FaultKind {
    fn name(&self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::Torn { .. } => "torn",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// One scheduled fault: the named failpoint fails with `kind` on exactly
/// the 1-based hit indices in `hits`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Failpoint name (see [`points`]).
    pub point: String,
    /// 1-based hit indices on which this rule fires.
    pub hits: Vec<u64>,
    /// Failure mode applied on those hits.
    pub kind: FaultKind,
}

/// A reproducible schedule of faults: which failpoint fires on which hit,
/// with which failure mode. Serializable via [`hera_types::json`], so a
/// failing chaos case replays from its plan file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for hand-written plans). Carried
    /// for provenance only — the rules are the schedule.
    pub seed: u64,
    /// The scheduled faults.
    pub rules: Vec<FaultRule>,
}

/// splitmix64 — the tiny, well-mixed PRNG step used to derive random
/// plans without pulling a crate into this dependency-free layer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: no failpoint ever fires.
    pub fn none() -> Self {
        Self::default()
    }

    /// Derives a random plan from a seed — deterministically: the same
    /// seed yields the same plan on every host. Plans stay small (at most
    /// four rules, hits within the first dozen) so most chaos cases
    /// exercise a few injected failures rather than total IO blackout.
    pub fn random(seed: u64) -> Self {
        let mut s = seed ^ 0xD6E8_FEB8_6659_FD93;
        let n_rules = (splitmix64(&mut s) % 4) as usize + 1;
        let mut rules = Vec::with_capacity(n_rules);
        for _ in 0..n_rules {
            let point = points::ALL[(splitmix64(&mut s) % points::ALL.len() as u64) as usize];
            let n_hits = (splitmix64(&mut s) % 2) as usize + 1;
            let mut hits: Vec<u64> = (0..n_hits).map(|_| splitmix64(&mut s) % 12 + 1).collect();
            hits.sort_unstable();
            hits.dedup();
            let kind = match point {
                points::STORE_WRITE_WRITE => {
                    if splitmix64(&mut s).is_multiple_of(2) {
                        FaultKind::Torn {
                            keep_percent: (splitmix64(&mut s) % 100) as u8,
                        }
                    } else {
                        FaultKind::Error
                    }
                }
                points::STORE_READ => {
                    if splitmix64(&mut s).is_multiple_of(2) {
                        FaultKind::Corrupt
                    } else {
                        FaultKind::Error
                    }
                }
                _ => FaultKind::Error,
            };
            rules.push(FaultRule {
                point: point.to_string(),
                hits,
                kind,
            });
        }
        Self { seed, rules }
    }

    /// Serializes the plan (stable field order; round-trips through
    /// [`FaultPlan::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::Int(self.seed as i64)),
            (
                "rules".into(),
                Json::Arr(
                    self.rules
                        .iter()
                        .map(|r| {
                            let mut obj = vec![
                                ("point".into(), Json::Str(r.point.clone())),
                                (
                                    "hits".into(),
                                    Json::Arr(
                                        r.hits.iter().map(|&h| Json::Int(h as i64)).collect(),
                                    ),
                                ),
                                ("kind".into(), Json::Str(r.kind.name().into())),
                            ];
                            if let FaultKind::Torn { keep_percent } = r.kind {
                                obj.push((
                                    "keep_percent".into(),
                                    Json::Int(i64::from(keep_percent)),
                                ));
                            }
                            Json::Obj(obj)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a plan serialized by [`FaultPlan::to_json`]. Unknown kinds
    /// and malformed hit lists are rejected with
    /// [`HeraError::Serialization`].
    pub fn from_json(json: &Json) -> Result<Self> {
        let bad = |msg: String| HeraError::Serialization(format!("fault plan: {msg}"));
        let seed = json.expect("seed")?.as_i64()? as u64;
        let mut rules = Vec::new();
        for r in json.expect("rules")?.as_arr()? {
            let point = r.expect("point")?.as_str()?.to_string();
            let mut hits = Vec::new();
            for h in r.expect("hits")?.as_arr()? {
                let h = h.as_i64()?;
                if h < 1 {
                    return Err(bad(format!("hit index {h} is not 1-based")));
                }
                hits.push(h as u64);
            }
            let kind = match r.expect("kind")?.as_str()? {
                "error" => FaultKind::Error,
                "corrupt" => FaultKind::Corrupt,
                "torn" => {
                    let keep = r.expect("keep_percent")?.as_i64()?;
                    if !(0..=100).contains(&keep) {
                        return Err(bad(format!("keep_percent {keep} outside 0..=100")));
                    }
                    FaultKind::Torn {
                        keep_percent: keep as u8,
                    }
                }
                other => return Err(bad(format!("unknown fault kind {other:?}"))),
            };
            rules.push(FaultRule { point, hits, kind });
        }
        Ok(Self { seed, rules })
    }

    /// True if no rule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(|r| r.hits.is_empty())
    }
}

/// One fault that actually fired, for post-run assertions and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// The failpoint that fired.
    pub point: String,
    /// The 1-based hit index it fired on.
    pub hit: u64,
    /// The failure mode applied.
    pub kind: FaultKind,
}

impl std::fmt::Display for FiredFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{} ({})", self.point, self.hit, self.kind.name())
    }
}

#[derive(Debug, Default)]
struct InjectorState {
    rules: Vec<FaultRule>,
    counters: BTreeMap<String, u64>,
    fired: Vec<FiredFault>,
}

/// The failpoint registry handle threaded through IO edges. Cheap to
/// clone; clones share one hit counter and fired log, so a plan's
/// schedule spans every edge the same injector reaches.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    state: Option<Arc<Mutex<InjectorState>>>,
}

impl FaultInjector {
    /// An injector that never fires and never counts — the production
    /// default; every [`FaultInjector::hit`] is a single branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An injector executing `plan`'s schedule.
    pub fn new(plan: &FaultPlan) -> Self {
        Self {
            state: Some(Arc::new(Mutex::new(InjectorState {
                rules: plan.rules.clone(),
                counters: BTreeMap::new(),
                fired: Vec::new(),
            }))),
        }
    }

    /// True when a plan is attached (even an empty one).
    pub fn enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Registers one hit on a failpoint and returns the fault to apply,
    /// if the plan schedules one for this hit. IO edges call this exactly
    /// once per operation attempt.
    pub fn hit(&self, point: &str) -> Option<FaultKind> {
        let state = self.state.as_ref()?;
        let mut s = state.lock().expect("fault injector poisoned");
        let count = s.counters.entry(point.to_string()).or_insert(0);
        *count += 1;
        let hit = *count;
        let kind = s
            .rules
            .iter()
            .find(|r| r.point == point && r.hits.contains(&hit))
            .map(|r| r.kind)?;
        s.fired.push(FiredFault {
            point: point.to_string(),
            hit,
            kind,
        });
        Some(kind)
    }

    /// Times a failpoint has been consulted so far (0 when disabled).
    /// Lets tests prove an IO edge is actually instrumented.
    pub fn hits(&self, point: &str) -> u64 {
        self.state
            .as_ref()
            .and_then(|s| {
                s.lock()
                    .expect("fault injector poisoned")
                    .counters
                    .get(point)
                    .copied()
            })
            .unwrap_or(0)
    }

    /// Every fault that fired so far, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.state.as_ref().map_or_else(Vec::new, |s| {
            s.lock().expect("fault injector poisoned").fired.clone()
        })
    }

    /// Builds the injected error an edge reports when a failpoint fires.
    /// The message always contains `"injected fault"` so tests and
    /// operators can tell injected failures from real ones.
    pub fn error(point: &str, context: &str) -> HeraError {
        HeraError::Io(format!("injected fault at {point}: {context}"))
    }
}

// ---------------------------------------------------------------------
// Retry with exponential backoff.
// ---------------------------------------------------------------------

/// A source of delay, injectable so backoff schedules are unit-testable
/// without real sleeps.
pub trait Clock: Send + Sync {
    /// Waits for (or records) `d`.
    fn sleep(&self, d: Duration);
}

/// The production clock: actually sleeps.
#[derive(Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A test clock that records every requested sleep and never blocks.
#[derive(Debug, Default)]
pub struct ManualClock {
    sleeps: Mutex<Vec<Duration>>,
}

impl ManualClock {
    /// A fresh recording clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every delay requested so far, in order.
    pub fn sleeps(&self) -> Vec<Duration> {
        self.sleeps.lock().expect("manual clock poisoned").clone()
    }
}

impl Clock for ManualClock {
    fn sleep(&self, d: Duration) {
        self.sleeps.lock().expect("manual clock poisoned").push(d);
    }
}

/// Capped exponential backoff: attempt `k` (2-based) waits
/// `base · factor^(k−2)`, clamped to `cap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Delay before the second attempt.
    pub base: Duration,
    /// Multiplier applied per further attempt.
    pub factor: u32,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl BackoffPolicy {
    /// No retries: one attempt, fail fast.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base: Duration::ZERO,
            factor: 1,
            cap: Duration::ZERO,
        }
    }

    /// The checkpoint-write default: 3 attempts, 5 ms → 10 ms backoff,
    /// capped at 100 ms — enough to ride out transient filesystem
    /// hiccups without stalling a resolve loop.
    pub fn checkpoint_default() -> Self {
        Self {
            max_attempts: 3,
            base: Duration::from_millis(5),
            factor: 2,
            cap: Duration::from_millis(100),
        }
    }

    /// The delay before attempt `attempt` (2-based; attempt 1 never
    /// waits).
    pub fn delay_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let exp = attempt - 2;
        let factor = self.factor.max(1).saturating_pow(exp);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// Terminal failure of a [`retry`] loop: the last error plus how many
/// attempts were spent reaching it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryError {
    /// Attempts performed (1 ≤ attempts ≤ `max_attempts`).
    pub attempts: u32,
    /// The error of the final attempt.
    pub error: HeraError,
}

/// Runs `op` under `policy`: up to `max_attempts` attempts, sleeping the
/// policy's backoff schedule on `clock` between them. Only errors for
/// which `retryable` returns true are retried; others fail immediately.
/// On success returns the value and the number of attempts spent.
pub fn retry<T>(
    policy: &BackoffPolicy,
    clock: &dyn Clock,
    mut op: impl FnMut(u32) -> Result<T>,
    mut retryable: impl FnMut(&HeraError) -> bool,
) -> std::result::Result<(T, u32), RetryError> {
    let max = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        attempt += 1;
        match op(attempt) {
            Ok(v) => return Ok((v, attempt)),
            Err(error) => {
                if attempt >= max || !retryable(&error) {
                    return Err(RetryError {
                        attempts: attempt,
                        error,
                    });
                }
                clock.sleep(policy.delay_before(attempt + 1));
            }
        }
    }
}

/// The retry predicate for IO edges: transient operating-system failures
/// are worth retrying; integrity and logic errors are not.
pub fn io_retryable(e: &HeraError) -> bool {
    matches!(e, HeraError::Io(_))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_is_inert() {
        let inj = FaultInjector::disabled();
        assert!(!inj.enabled());
        for _ in 0..3 {
            assert_eq!(inj.hit(points::STORE_READ), None);
        }
        assert_eq!(inj.hits(points::STORE_READ), 0);
        assert!(inj.fired().is_empty());
    }

    #[test]
    fn plan_fires_on_exact_hits_only() {
        let plan = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                point: points::STORE_WRITE_SYNC.into(),
                hits: vec![2, 4],
                kind: FaultKind::Error,
            }],
        };
        let inj = FaultInjector::new(&plan);
        let outcomes: Vec<bool> = (0..5)
            .map(|_| inj.hit(points::STORE_WRITE_SYNC).is_some())
            .collect();
        assert_eq!(outcomes, vec![false, true, false, true, false]);
        assert_eq!(inj.hits(points::STORE_WRITE_SYNC), 5);
        let fired = inj.fired();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].hit, 2);
        assert_eq!(fired[1].hit, 4);
        // Unrelated points count independently and never fire.
        assert_eq!(inj.hit(points::STORE_READ), None);
        assert_eq!(inj.hits(points::STORE_READ), 1);
    }

    #[test]
    fn clones_share_one_schedule() {
        let plan = FaultPlan {
            seed: 0,
            rules: vec![FaultRule {
                point: points::OBS_SINK_WRITE.into(),
                hits: vec![2],
                kind: FaultKind::Error,
            }],
        };
        let a = FaultInjector::new(&plan);
        let b = a.clone();
        assert_eq!(a.hit(points::OBS_SINK_WRITE), None);
        assert_eq!(b.hit(points::OBS_SINK_WRITE), Some(FaultKind::Error));
        assert_eq!(a.fired().len(), 1);
    }

    #[test]
    fn plan_json_roundtrip() {
        let plan = FaultPlan {
            seed: 99,
            rules: vec![
                FaultRule {
                    point: points::STORE_WRITE_WRITE.into(),
                    hits: vec![1, 3],
                    kind: FaultKind::Torn { keep_percent: 40 },
                },
                FaultRule {
                    point: points::STORE_READ.into(),
                    hits: vec![2],
                    kind: FaultKind::Corrupt,
                },
                FaultRule {
                    point: points::STORE_WRITE_RENAME.into(),
                    hits: vec![1],
                    kind: FaultKind::Error,
                },
            ],
        };
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        // And through text, the way plan files travel.
        let reparsed = hera_types::json::parse(&json.to_string_compact()).unwrap();
        assert_eq!(FaultPlan::from_json(&reparsed).unwrap(), plan);
    }

    #[test]
    fn plan_json_rejects_garbage() {
        let bad_kind = hera_types::json::parse(
            r#"{"seed":1,"rules":[{"point":"x","hits":[1],"kind":"meteor"}]}"#,
        )
        .unwrap();
        assert!(matches!(
            FaultPlan::from_json(&bad_kind),
            Err(HeraError::Serialization(_))
        ));
        let bad_hit = hera_types::json::parse(
            r#"{"seed":1,"rules":[{"point":"x","hits":[0],"kind":"error"}]}"#,
        )
        .unwrap();
        assert!(matches!(
            FaultPlan::from_json(&bad_hit),
            Err(HeraError::Serialization(_))
        ));
        let bad_keep = hera_types::json::parse(
            r#"{"seed":1,"rules":[{"point":"x","hits":[1],"kind":"torn","keep_percent":101}]}"#,
        )
        .unwrap();
        assert!(matches!(
            FaultPlan::from_json(&bad_keep),
            Err(HeraError::Serialization(_))
        ));
    }

    #[test]
    fn random_plans_are_deterministic_and_valid() {
        for seed in 0..200u64 {
            let a = FaultPlan::random(seed);
            let b = FaultPlan::random(seed);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(!a.rules.is_empty());
            for r in &a.rules {
                assert!(points::ALL.contains(&r.point.as_str()), "{}", r.point);
                assert!(!r.hits.is_empty());
                assert!(r.hits.iter().all(|&h| h >= 1));
            }
            // Round-trips through its own serialization.
            assert_eq!(FaultPlan::from_json(&a.to_json()).unwrap(), a);
        }
        // Different seeds differ somewhere (not a constant function).
        assert_ne!(FaultPlan::random(1), FaultPlan::random(2));
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let p = BackoffPolicy {
            max_attempts: 6,
            base: Duration::from_millis(10),
            factor: 2,
            cap: Duration::from_millis(35),
        };
        assert_eq!(p.delay_before(1), Duration::ZERO);
        assert_eq!(p.delay_before(2), Duration::from_millis(10));
        assert_eq!(p.delay_before(3), Duration::from_millis(20));
        assert_eq!(p.delay_before(4), Duration::from_millis(35), "capped");
        assert_eq!(p.delay_before(5), Duration::from_millis(35), "capped");
    }

    #[test]
    fn retry_attempt_counts_and_clock_schedule() {
        let p = BackoffPolicy {
            max_attempts: 4,
            base: Duration::from_millis(5),
            factor: 2,
            cap: Duration::from_secs(1),
        };
        let clock = ManualClock::new();
        // Succeeds on the third attempt.
        let (v, attempts) = retry(
            &p,
            &clock,
            |attempt| {
                if attempt < 3 {
                    Err(HeraError::Io("transient".into()))
                } else {
                    Ok(attempt * 10)
                }
            },
            io_retryable,
        )
        .unwrap();
        assert_eq!(v, 30);
        assert_eq!(attempts, 3);
        assert_eq!(
            clock.sleeps(),
            vec![Duration::from_millis(5), Duration::from_millis(10)],
            "one backoff delay per retried attempt, doubling"
        );
    }

    #[test]
    fn retry_exhausts_at_cap() {
        let p = BackoffPolicy {
            max_attempts: 3,
            base: Duration::from_millis(1),
            factor: 2,
            cap: Duration::from_secs(1),
        };
        let clock = ManualClock::new();
        let mut calls = 0u32;
        let err = retry::<()>(
            &p,
            &clock,
            |_| {
                calls += 1;
                Err(HeraError::Io("still down".into()))
            },
            io_retryable,
        )
        .unwrap_err();
        assert_eq!(calls, 3, "exactly max_attempts attempts");
        assert_eq!(err.attempts, 3);
        assert!(matches!(err.error, HeraError::Io(_)));
        assert_eq!(clock.sleeps().len(), 2, "no sleep after the last attempt");
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let p = BackoffPolicy::checkpoint_default();
        let clock = ManualClock::new();
        let mut calls = 0u32;
        let err = retry::<()>(
            &p,
            &clock,
            |_| {
                calls += 1;
                Err(HeraError::Corrupt("bad crc".into()))
            },
            io_retryable,
        )
        .unwrap_err();
        assert_eq!(calls, 1, "integrity errors are not retried");
        assert_eq!(err.attempts, 1);
        assert!(clock.sleeps().is_empty());
    }

    #[test]
    fn none_policy_is_single_attempt() {
        let clock = ManualClock::new();
        let err = retry::<()>(
            &BackoffPolicy::none(),
            &clock,
            |_| Err(HeraError::Io("x".into())),
            io_retryable,
        )
        .unwrap_err();
        assert_eq!(err.attempts, 1);
    }

    #[test]
    fn injected_error_is_labelled() {
        let e = FaultInjector::error(points::STORE_WRITE_SYNC, "snap.hera");
        let msg = e.to_string();
        assert!(msg.contains("injected fault"), "{msg}");
        assert!(msg.contains(points::STORE_WRITE_SYNC), "{msg}");
    }
}
