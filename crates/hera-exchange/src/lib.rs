//! Schema matching + data exchange — the conventional pipeline of
//! Fig. 1(c) that HERA is evaluated against.
//!
//! Given a heterogeneous dataset, this crate reproduces §VI-A's
//! construction of the *homogeneous* datasets:
//!
//! 1. **Target schema** — a user-defined schema is simulated by sampling a
//!    fraction of the dataset's distinct (canonical) attributes: `⅓` for
//!    the `-S` variants, `⅔` for `-L` (the paper "randomly selected part
//!    of distinct attributes from source schemas to generate the target
//!    schema").
//! 2. **Schema matchings → tgds** — each source schema gets one
//!    source-to-target tuple-generating dependency
//!    `∀x̄ (S(x̄) → ∃ȳ T(π(x̄), ȳ))` ([`Tgd`]), derived from the oracle
//!    attribute identity (the paper decides matchings manually).
//! 3. **Chase** — every source record is chased through its schema's tgd
//!    ([`chase`]): mapped positions copy values, existential positions
//!    become labeled nulls. The result is one flat relation under the
//!    target schema, with the original entity labels carried along.
//!
//! The *information loss* HERA exploits is measurable here:
//! [`ExchangePlan::dropped_value_count`] counts source values that no
//! target position preserves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hera_types::{CanonAttrId, Dataset, DatasetBuilder, EntityId, SchemaId, Value};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rustc_hash::{FxHashMap, FxHashSet};

/// A source-to-target tuple-generating dependency for one source schema.
///
/// `mapping[t]` says where target position `t` gets its value: `Some(s)`
/// copies source position `s` (the schema matching `source.a_s ≈
/// target.a_t`); `None` is existential — the chase emits a labeled null.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    /// The source schema this dependency fires on.
    pub source_schema: SchemaId,
    /// Target-position → source-position map.
    pub mapping: Vec<Option<usize>>,
}

impl Tgd {
    /// Number of target positions filled from the source (the preserved
    /// information content).
    pub fn preserved(&self) -> usize {
        self.mapping.iter().filter(|m| m.is_some()).count()
    }
}

/// The complete exchange specification for a dataset.
#[derive(Debug, Clone)]
pub struct ExchangePlan {
    /// Canonical classes retained by the target schema, in target order.
    pub target_attrs: Vec<CanonAttrId>,
    /// Display names for the target attributes (borrowed from the first
    /// source attribute of each class).
    pub target_names: Vec<String>,
    /// One tgd per source schema, indexed by schema id.
    pub tgds: Vec<Tgd>,
    /// Source values that no tgd maps anywhere — the information loss.
    pub dropped_value_count: usize,
}

/// Samples a target schema covering `fraction` of the distinct attributes
/// and derives the tgds. Deterministic in `seed`.
///
/// # Panics
/// Panics if `fraction` is not in `(0, 1]` or the sample would be empty.
pub fn plan_exchange(ds: &Dataset, fraction: f64, seed: u64) -> ExchangePlan {
    plan_exchange_ensuring(ds, fraction, seed, &[])
}

/// Like [`plan_exchange`], but guarantees the listed canonical classes are
/// in the target schema (space permitting). §VI motivates this: "a target
/// schema is defined by the user for specific computation goals" — a user
/// consuming entity records keeps the entity's primary name attribute,
/// even when the rest of the selection is arbitrary.
pub fn plan_exchange_ensuring(
    ds: &Dataset,
    fraction: f64,
    seed: u64,
    ensure: &[CanonAttrId],
) -> ExchangePlan {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1]"
    );
    // Distinct canonical classes present, with a representative name and
    // their source coverage (how many schemas expose them).
    let mut seen: FxHashSet<CanonAttrId> = FxHashSet::default();
    let mut classes: Vec<(CanonAttrId, String)> = Vec::new();
    let mut coverage: FxHashMap<CanonAttrId, usize> = FxHashMap::default();
    for schema in ds.registry.schemas() {
        let mut in_schema: FxHashSet<CanonAttrId> = FxHashSet::default();
        for attr in &schema.attrs {
            let c = ds.truth.canon_of(attr.id);
            if seen.insert(c) {
                classes.push((c, attr.name.clone()));
            }
            if in_schema.insert(c) {
                *coverage.entry(c).or_insert(0) += 1;
            }
        }
    }
    classes.sort_by_key(|(c, _)| *c);

    let keep = ((classes.len() as f64 * fraction).round() as usize).clamp(1, classes.len());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // A target schema is "defined by the user for specific computation
    // goals" (§VI): users pick attributes their sources can actually
    // populate, so selection prefers high-coverage classes — ensured
    // classes first, then descending source coverage, with the seeded
    // shuffle breaking ties (this is where the randomness the paper
    // mentions lives: most classes tie on coverage).
    let mut shuffled = classes.clone();
    shuffled.shuffle(&mut rng);
    shuffled.sort_by_key(|(c, _)| {
        (
            !ensure.contains(c),
            std::cmp::Reverse(coverage.get(c).copied().unwrap_or(0)),
        )
    });
    let mut selected: Vec<(CanonAttrId, String)> = shuffled.into_iter().take(keep).collect();
    selected.sort_by_key(|(c, _)| *c);

    let target_attrs: Vec<CanonAttrId> = selected.iter().map(|(c, _)| *c).collect();
    let target_names: Vec<String> = selected.iter().map(|(_, n)| n.clone()).collect();
    let pos_of_class: FxHashMap<CanonAttrId, usize> = target_attrs
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i))
        .collect();

    // One tgd per source schema: target position t copies the source
    // position whose attribute belongs to class target_attrs[t].
    let tgds: Vec<Tgd> = ds
        .registry
        .schemas()
        .map(|schema| {
            let mut mapping: Vec<Option<usize>> = vec![None; target_attrs.len()];
            for (s_pos, attr) in schema.attrs.iter().enumerate() {
                if let Some(&t_pos) = pos_of_class.get(&ds.truth.canon_of(attr.id)) {
                    // No redundant attributes per schema [12]: first wins.
                    if mapping[t_pos].is_none() {
                        mapping[t_pos] = Some(s_pos);
                    }
                }
            }
            Tgd {
                source_schema: schema.id,
                mapping,
            }
        })
        .collect();

    // Information loss: non-null source values in positions no tgd maps.
    let mut dropped = 0usize;
    for rec in ds.iter() {
        let tgd = &tgds[rec.schema.index()];
        let mapped: FxHashSet<usize> = tgd.mapping.iter().flatten().copied().collect();
        dropped += rec
            .values
            .iter()
            .enumerate()
            .filter(|(pos, v)| !v.is_null() && !mapped.contains(pos))
            .count();
    }

    ExchangePlan {
        target_attrs,
        target_names,
        tgds,
        dropped_value_count: dropped,
    }
}

/// Chases every record of `ds` through its schema's tgd, producing the
/// homogeneous dataset under the target schema. Entity labels carry over;
/// existential positions become nulls.
pub fn chase(ds: &Dataset, plan: &ExchangePlan, name: impl Into<String>) -> Dataset {
    let mut builder = DatasetBuilder::new(name);
    let schema_attrs: Vec<(String, CanonAttrId)> = plan
        .target_names
        .iter()
        .cloned()
        .zip(plan.target_attrs.iter().copied())
        .collect();
    let target = builder.add_schema("Target", schema_attrs);
    for rec in ds.iter() {
        let tgd = &plan.tgds[rec.schema.index()];
        debug_assert_eq!(tgd.source_schema, rec.schema);
        let values: Vec<Value> = tgd
            .mapping
            .iter()
            .map(|m| match m {
                Some(s_pos) => rec.values[*s_pos].clone(),
                None => Value::Null,
            })
            .collect();
        let entity: EntityId = ds.truth.entity_of(rec.id);
        builder
            .add_record(target, values, entity)
            .expect("chase emits target-arity tuples");
    }
    builder.build()
}

/// The *ideal* data exchange of the HERA framework (Fig. 1-d's final
/// step): convert records **with entity labels** to the target schema,
/// emitting one fused record per entity.
///
/// §I motivates this: "An ideal data exchange is to join instances
/// referring to the same real-world entity. However, most existing work
/// about data exchange join two records with the same or similar key
/// values … our framework accomplishes ER before data exchange, which
/// offers feasibility to an ideal exchange."
///
/// `entity_of[rid]` are the labels HERA produced (or any labeling). Per
/// entity and per target attribute, the fused value is the **most
/// frequent non-null candidate** across the entity's records (ties break
/// toward the longer text, then lexicographically — a standard
/// majority-consolidation fusion rule). The fused dataset's ground truth
/// maps each fused record to its (majority) true entity so fusion quality
/// remains measurable.
pub fn fuse_entities(
    ds: &Dataset,
    entity_of: &[u32],
    plan: &ExchangePlan,
    name: impl Into<String>,
) -> Dataset {
    assert_eq!(entity_of.len(), ds.len(), "one label per record");
    let mut builder = DatasetBuilder::new(name);
    let schema_attrs: Vec<(String, CanonAttrId)> = plan
        .target_names
        .iter()
        .cloned()
        .zip(plan.target_attrs.iter().copied())
        .collect();
    let target = builder.add_schema("Target", schema_attrs);

    // Group records by predicted entity label, deterministic order.
    let mut groups: std::collections::BTreeMap<u32, Vec<&hera_types::Record>> = Default::default();
    for rec in ds.iter() {
        groups
            .entry(entity_of[rec.id.index()])
            .or_default()
            .push(rec);
    }

    for members in groups.values() {
        let mut values: Vec<Value> = Vec::with_capacity(plan.target_attrs.len());
        for t_pos in 0..plan.target_attrs.len() {
            // Collect candidates via each member's tgd.
            let mut counts: Vec<(Value, usize)> = Vec::new();
            for rec in members {
                let tgd = &plan.tgds[rec.schema.index()];
                if let Some(s_pos) = tgd.mapping[t_pos] {
                    let v = &rec.values[s_pos];
                    if v.is_null() {
                        continue;
                    }
                    match counts.iter_mut().find(|(x, _)| x.same(v)) {
                        Some((_, n)) => *n += 1,
                        None => counts.push((v.clone(), 1)),
                    }
                }
            }
            counts.sort_by(|(va, na), (vb, nb)| {
                nb.cmp(na)
                    .then_with(|| vb.to_text().len().cmp(&va.to_text().len()))
                    .then_with(|| va.to_text().cmp(&vb.to_text()))
            });
            values.push(
                counts
                    .into_iter()
                    .next()
                    .map(|(v, _)| v)
                    .unwrap_or(Value::Null),
            );
        }
        // Majority true entity of the members, for measurable fusion.
        let mut ecounts: FxHashMap<EntityId, usize> = FxHashMap::default();
        for rec in members {
            *ecounts.entry(ds.truth.entity_of(rec.id)).or_insert(0) += 1;
        }
        let majority = ecounts
            .into_iter()
            .max_by_key(|&(e, n)| (n, std::cmp::Reverse(e.raw())))
            .map(|(e, _)| e)
            .expect("non-empty entity group");
        builder
            .add_record(target, values, majority)
            .expect("fusion emits target-arity tuples");
    }
    builder.build()
}

/// Convenience: the paper's `-S` construction (⅓ of distinct attributes,
/// always retaining canonical class 0 — the primary name attribute by
/// workspace convention).
pub fn exchange_small(ds: &Dataset, seed: u64) -> (Dataset, ExchangePlan) {
    let plan = plan_exchange_ensuring(ds, 1.0 / 3.0, seed, &[CanonAttrId::new(0)]);
    let out = chase(ds, &plan, format!("{}-S", ds.name));
    (out, plan)
}

/// Convenience: the paper's `-L` construction (⅔ of distinct attributes,
/// always retaining canonical class 0).
pub fn exchange_large(ds: &Dataset, seed: u64) -> (Dataset, ExchangePlan) {
    let plan = plan_exchange_ensuring(ds, 2.0 / 3.0, seed, &[CanonAttrId::new(0)]);
    let out = chase(ds, &plan, format!("{}-L", ds.name));
    (out, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_types::motivating_example;

    #[test]
    fn full_fraction_preserves_everything() {
        let ds = motivating_example();
        let plan = plan_exchange(&ds, 1.0, 1);
        assert_eq!(plan.target_attrs.len(), 7);
        assert_eq!(plan.dropped_value_count, 0);
        let out = chase(&ds, &plan, "full");
        assert_eq!(out.len(), ds.len());
        // r1 (Customer I, 5 attrs) has 2 nulls under the 7-attr target.
        assert_eq!(out.record(hera_types::RecordId::new(0)).non_null_arity(), 5);
    }

    #[test]
    fn small_fraction_loses_information() {
        let ds = motivating_example();
        let plan = plan_exchange(&ds, 1.0 / 3.0, 1);
        assert_eq!(plan.target_attrs.len(), 2); // round(7/3)
        assert!(plan.dropped_value_count > 0);
    }

    #[test]
    fn chase_copies_mapped_values_only() {
        let ds = motivating_example();
        let plan = plan_exchange(&ds, 1.0, 1);
        let out = chase(&ds, &plan, "t");
        // Every non-null output value appears in its source record.
        for (src, dst) in ds.iter().zip(out.iter()) {
            for v in &dst.values {
                if !v.is_null() {
                    assert!(src.values.iter().any(|s| s.same(v)));
                }
            }
        }
    }

    #[test]
    fn entity_labels_carry_over() {
        let ds = motivating_example();
        let (out, _) = exchange_small(&ds, 7);
        assert_eq!(out.truth.entity_count(), ds.truth.entity_count());
        for rid in 0..ds.len() as u32 {
            assert_eq!(
                out.truth.entity_of(hera_types::RecordId::new(rid)),
                ds.truth.entity_of(hera_types::RecordId::new(rid))
            );
        }
    }

    #[test]
    fn exchange_is_deterministic() {
        let ds = motivating_example();
        let (a, _) = exchange_small(&ds, 7);
        let (b, _) = exchange_small(&ds, 7);
        assert_eq!(a.records, b.records);
        let (c, _) = exchange_small(&ds, 8);
        // Different seed may sample different attrs (not guaranteed to
        // differ, but plans must still be internally consistent).
        assert_eq!(c.len(), ds.len());
    }

    #[test]
    fn tgd_shapes() {
        let ds = motivating_example();
        let plan = plan_exchange(&ds, 1.0, 1);
        assert_eq!(plan.tgds.len(), 3);
        for tgd in &plan.tgds {
            assert_eq!(tgd.mapping.len(), plan.target_attrs.len());
            // Customer schemas have 5/3/5 attrs — preserved counts match.
        }
        let preserved: Vec<usize> = plan.tgds.iter().map(|t| t.preserved()).collect();
        assert_eq!(preserved, vec![5, 3, 5]);
    }

    #[test]
    fn names_and_s_l_suffixes() {
        let ds = motivating_example();
        let (s, _) = exchange_small(&ds, 7);
        let (l, _) = exchange_large(&ds, 7);
        assert_eq!(s.name, "fig1-customers-S");
        assert_eq!(l.name, "fig1-customers-L");
        assert!(
            l.registry.schema(hera_types::SchemaId::new(0)).arity()
                >= s.registry.schema(hera_types::SchemaId::new(0)).arity()
        );
    }

    #[test]
    fn works_on_generated_data() {
        let ds = hera_datagen::table1_dataset("dm1");
        let (out, plan) = exchange_small(&ds, 99);
        assert_eq!(out.len(), 1000);
        assert_eq!(out.registry.len(), 1);
        assert!(plan.dropped_value_count > 0, "a -S exchange must lose data");
        // Target arity = round(16/3) = 5.
        assert_eq!(plan.target_attrs.len(), 5);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_rejected() {
        plan_exchange(&motivating_example(), 0.0, 1);
    }

    #[test]
    fn fuse_entities_consolidates() {
        let ds = motivating_example();
        let plan = plan_exchange(&ds, 1.0, 1);
        // Ground-truth labels: {0,1,3,5} → 0, {2,4} → 2.
        let labels = vec![0u32, 0, 2, 0, 2, 0];
        let fused = fuse_entities(&ds, &labels, &plan, "fused");
        assert_eq!(fused.len(), 2);
        // Each fused record has the target arity.
        for rec in fused.iter() {
            assert_eq!(rec.arity(), plan.target_attrs.len());
        }
        // The bigger entity's name candidates are John×2, Bush×2,
        // J.Bush×0 (r2's name "Bush") — the 2-2 tie breaks by length then
        // lexicographic order, deterministically selecting "Bush".
        let name_pos = plan
            .target_attrs
            .iter()
            .position(|&c| c == CanonAttrId::new(0))
            .unwrap();
        let names: Vec<String> = fused.iter().map(|r| r.values[name_pos].to_text()).collect();
        assert!(names.contains(&"Bush".to_string()), "{names:?}");
        assert!(names.contains(&"J.Bush".to_string()), "{names:?}");
        // Ground truth carried over: two distinct entities.
        assert_eq!(fused.truth.entity_count(), 2);
    }

    #[test]
    fn fuse_entities_prefers_majority_then_longest() {
        use hera_types::{DatasetBuilder, EntityId};
        let mut b = DatasetBuilder::new("t");
        let s = b.add_schema("S", [("x", CanonAttrId::new(0))]);
        for v in ["aa", "aa", "bbbb"] {
            b.add_record(s, vec![Value::from(v)], EntityId::new(0))
                .unwrap();
        }
        let ds = b.build();
        let plan = plan_exchange(&ds, 1.0, 1);
        let fused = fuse_entities(&ds, &[0, 0, 0], &plan, "f");
        assert_eq!(
            fused.record(hera_types::RecordId::new(0)).values[0],
            Value::from("aa")
        );
        // Tie case: one of each → longest wins.
        let mut b = DatasetBuilder::new("t2");
        let s = b.add_schema("S", [("x", CanonAttrId::new(0))]);
        for v in ["aa", "bbbb"] {
            b.add_record(s, vec![Value::from(v)], EntityId::new(0))
                .unwrap();
        }
        let ds = b.build();
        let plan = plan_exchange(&ds, 1.0, 1);
        let fused = fuse_entities(&ds, &[0, 0], &plan, "f2");
        assert_eq!(
            fused.record(hera_types::RecordId::new(0)).values[0],
            Value::from("bbbb")
        );
    }

    #[test]
    #[should_panic(expected = "one label per record")]
    fn fuse_rejects_wrong_label_count() {
        let ds = motivating_example();
        let plan = plan_exchange(&ds, 1.0, 1);
        fuse_entities(&ds, &[0], &plan, "bad");
    }
}
