//! Clustering-theoretic metrics: Adjusted Rand Index and V-measure.
//!
//! Pairwise P/R/F1 (the paper's measure) and B³ are record-centric;
//! these two summarize the *partition* agreement instead, and are the
//! conventional companions when comparing clustering algorithms (CC is
//! literally a clustering method). ARI is chance-corrected — random
//! partitions score ≈ 0 — and V-measure decomposes into homogeneity and
//! completeness, which separate over-merging from over-splitting.

use hera_types::{GroundTruth, RecordId};
use rustc_hash::FxHashMap;

/// The contingency table between a predicted partition and ground truth.
struct Contingency {
    /// n_ij: records in predicted cluster i with truth entity j.
    cells: Vec<FxHashMap<u64, usize>>,
    /// Row sums (predicted cluster sizes).
    rows: Vec<usize>,
    /// Column sums (truth entity sizes among covered records).
    cols: FxHashMap<u64, usize>,
    /// Total records.
    n: usize,
}

fn contingency(predicted: &[Vec<u32>], truth: &GroundTruth) -> Contingency {
    let mut cells = Vec::with_capacity(predicted.len());
    let mut rows = Vec::with_capacity(predicted.len());
    let mut cols: FxHashMap<u64, usize> = FxHashMap::default();
    let mut n = 0usize;
    for cluster in predicted {
        let mut row: FxHashMap<u64, usize> = FxHashMap::default();
        for &r in cluster {
            let e = truth.entity_of(RecordId::new(r)).raw() as u64;
            *row.entry(e).or_insert(0) += 1;
            *cols.entry(e).or_insert(0) += 1;
            n += 1;
        }
        rows.push(cluster.len());
        cells.push(row);
    }
    Contingency {
        cells,
        rows,
        cols,
        n,
    }
}

fn choose2(x: usize) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand Index in `[-1, 1]`: 1 for identical partitions, ≈ 0 for
/// chance-level agreement. Returns 1.0 for empty input (vacuous
/// agreement).
pub fn adjusted_rand_index(predicted: &[Vec<u32>], truth: &GroundTruth) -> f64 {
    let c = contingency(predicted, truth);
    if c.n == 0 {
        return 1.0;
    }
    let sum_cells: f64 = c
        .cells
        .iter()
        .flat_map(|row| row.values())
        .map(|&x| choose2(x))
        .sum();
    let sum_rows: f64 = c.rows.iter().map(|&x| choose2(x)).sum();
    let sum_cols: f64 = c.cols.values().map(|&x| choose2(x)).sum();
    let total = choose2(c.n);
    if total == 0.0 {
        return 1.0;
    }
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions all-singletons or all-one-cluster.
        return if (sum_cells - expected).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    (sum_cells - expected) / (max_index - expected)
}

/// V-measure: harmonic mean of homogeneity (each predicted cluster holds
/// one entity) and completeness (each entity sits in one predicted
/// cluster). Returns `(homogeneity, completeness, v)`.
pub fn v_measure(predicted: &[Vec<u32>], truth: &GroundTruth) -> (f64, f64, f64) {
    let c = contingency(predicted, truth);
    if c.n == 0 {
        return (1.0, 1.0, 1.0);
    }
    let n = c.n as f64;
    // Entropies (natural log).
    let h = |counts: &mut dyn Iterator<Item = usize>| -> f64 {
        let mut e = 0.0;
        for x in counts {
            if x > 0 {
                let p = x as f64 / n;
                e -= p * p.ln();
            }
        }
        e
    };
    let h_pred = h(&mut c.rows.iter().copied());
    let h_truth = h(&mut c.cols.values().copied());
    // Conditional entropies from the contingency cells.
    let mut h_truth_given_pred = 0.0;
    let mut h_pred_given_truth = 0.0;
    for (row_idx, row) in c.cells.iter().enumerate() {
        let row_total = c.rows[row_idx] as f64;
        for (&e, &x) in row {
            let x = x as f64;
            let col_total = c.cols[&e] as f64;
            h_truth_given_pred -= (x / n) * (x / row_total).ln();
            h_pred_given_truth -= (x / n) * (x / col_total).ln();
        }
    }
    let homogeneity = if h_truth == 0.0 {
        1.0
    } else {
        1.0 - h_truth_given_pred / h_truth
    };
    let completeness = if h_pred == 0.0 {
        1.0
    } else {
        1.0 - h_pred_given_truth / h_pred
    };
    let v = if homogeneity + completeness == 0.0 {
        0.0
    } else {
        2.0 * homogeneity * completeness / (homogeneity + completeness)
    };
    (homogeneity, completeness, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_types::{CanonAttrId, EntityId};
    use proptest::prelude::*;

    /// Truth: {0,1,2} and {3,4}.
    fn truth() -> GroundTruth {
        GroundTruth::new(
            vec![
                EntityId::new(0),
                EntityId::new(0),
                EntityId::new(0),
                EntityId::new(1),
                EntityId::new(1),
            ],
            vec![CanonAttrId::new(0)],
        )
    }

    #[test]
    fn perfect_partition() {
        let pred = vec![vec![0, 1, 2], vec![3, 4]];
        assert!((adjusted_rand_index(&pred, &truth()) - 1.0).abs() < 1e-12);
        let (h, c, v) = v_measure(&pred, &truth());
        assert_eq!((h, c, v), (1.0, 1.0, 1.0));
    }

    #[test]
    fn all_singletons_is_homogeneous_but_incomplete() {
        let pred: Vec<Vec<u32>> = (0..5).map(|i| vec![i]).collect();
        let (h, c, v) = v_measure(&pred, &truth());
        assert_eq!(h, 1.0);
        assert!(c < 1.0);
        assert!(v < 1.0);
        // ARI of all-singletons vs a non-trivial truth is 0.
        assert!(adjusted_rand_index(&pred, &truth()).abs() < 1e-12);
    }

    #[test]
    fn one_big_cluster_is_complete_but_inhomogeneous() {
        let pred = vec![vec![0, 1, 2, 3, 4]];
        let (h, c, _) = v_measure(&pred, &truth());
        assert_eq!(c, 1.0);
        assert!(h < 1.0);
        assert!(adjusted_rand_index(&pred, &truth()).abs() < 1e-9);
    }

    #[test]
    fn split_partition_scores_between() {
        let pred = vec![vec![0, 1], vec![2], vec![3, 4]];
        let ari = adjusted_rand_index(&pred, &truth());
        assert!(ari > 0.0 && ari < 1.0, "ari {ari}");
        let (h, c, v) = v_measure(&pred, &truth());
        assert_eq!(h, 1.0); // no cluster mixes entities
        assert!(c < 1.0 && v < 1.0);
    }

    #[test]
    fn adversarial_mix_scores_low() {
        // Each cluster mixes both entities.
        let pred = vec![vec![0, 3], vec![1, 4], vec![2]];
        let ari = adjusted_rand_index(&pred, &truth());
        assert!(ari <= 0.05, "ari {ari}");
    }

    #[test]
    fn empty_input() {
        let t = GroundTruth::new(vec![], vec![CanonAttrId::new(0)]);
        assert_eq!(adjusted_rand_index(&[], &t), 1.0);
        assert_eq!(v_measure(&[], &t), (1.0, 1.0, 1.0));
    }

    #[test]
    fn degenerate_truths_are_not_nan() {
        // Both degenerate truths (all-singleton, all-one-entity) against
        // both degenerate predictions: every metric stays a number.
        let singles = GroundTruth::new(
            (0..5).map(EntityId::new).collect(),
            vec![CanonAttrId::new(0)],
        );
        let giant = GroundTruth::new(vec![EntityId::new(0); 5], vec![CanonAttrId::new(0)]);
        let single_pred: Vec<Vec<u32>> = (0..5).map(|i| vec![i]).collect();
        let giant_pred = vec![vec![0u32, 1, 2, 3, 4]];
        for t in [&singles, &giant] {
            for pred in [&single_pred, &giant_pred] {
                let ari = adjusted_rand_index(pred, t);
                let (h, c, v) = v_measure(pred, t);
                for x in [ari, h, c, v] {
                    assert!(!x.is_nan());
                }
            }
        }
        // Matching degenerate shapes agree perfectly.
        assert_eq!(adjusted_rand_index(&single_pred, &singles), 1.0);
        assert_eq!(adjusted_rand_index(&giant_pred, &giant), 1.0);
        assert_eq!(v_measure(&single_pred, &singles), (1.0, 1.0, 1.0));
        assert_eq!(v_measure(&giant_pred, &giant), (1.0, 1.0, 1.0));
    }

    proptest! {
        /// Bounds and identity for arbitrary partitions.
        #[test]
        fn bounds(assignment in proptest::collection::vec(0u32..4, 5)) {
            let mut clusters: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
            for (r, &c) in assignment.iter().enumerate() {
                clusters.entry(c).or_default().push(r as u32);
            }
            let pred: Vec<Vec<u32>> = clusters.into_values().collect();
            let t = truth();
            let ari = adjusted_rand_index(&pred, &t);
            prop_assert!((-1.0..=1.0).contains(&ari));
            let (h, c, v) = v_measure(&pred, &t);
            for x in [h, c, v] {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&x), "{x}");
            }
            prop_assert!(v <= h.max(c) + 1e-12);
        }
    }
}
