//! Entity-resolution quality metrics (§VI-A "Measure").
//!
//! The paper scores systems by pairwise *precision* ("the proportion of
//! correctly identified record pairs to the record pairs generated"),
//! *recall* ("… to the correct record pairs based on the ground-truth
//! entities") and their harmonic mean *F1*. [`PairMetrics`] implements
//! exactly that; [`bcubed`] adds the B³ cluster metric as a secondary
//! check (pairwise metrics over-reward large clusters, so agreement
//! between the two is a useful sanity signal).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;

pub use cluster::{adjusted_rand_index, v_measure};

use hera_types::{GroundTruth, RecordId};
use rustc_hash::FxHashMap;

/// Pairwise precision / recall / F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairMetrics {
    /// Correctly predicted co-referring pairs.
    pub true_positives: usize,
    /// Predicted pairs that are not co-referring in truth.
    pub false_positives: usize,
    /// Co-referring pairs the prediction missed.
    pub false_negatives: usize,
}

impl PairMetrics {
    /// Scores predicted clusters (each a list of record ids) against
    /// ground truth. Every record must appear in exactly one cluster.
    pub fn score(predicted: &[Vec<u32>], truth: &GroundTruth) -> Self {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut predicted_count = 0usize;
        for cluster in predicted {
            for (i, &a) in cluster.iter().enumerate() {
                for &b in &cluster[i + 1..] {
                    predicted_count += 1;
                    if truth.same_entity(RecordId::new(a), RecordId::new(b)) {
                        tp += 1;
                    } else {
                        fp += 1;
                    }
                }
            }
        }
        debug_assert_eq!(tp + fp, predicted_count);
        let positives = truth.positive_pair_count();
        Self {
            true_positives: tp,
            false_positives: fp,
            false_negatives: positives - tp,
        }
    }

    /// Precision; 1.0 when nothing was predicted (vacuously correct).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall; 1.0 when the truth has no positive pairs.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl std::fmt::Display for PairMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} (tp={}, fp={}, fn={})",
            self.precision(),
            self.recall(),
            self.f1(),
            self.true_positives,
            self.false_positives,
            self.false_negatives
        )
    }
}

/// B³ (B-cubed) precision / recall / F1 of predicted clusters against the
/// ground truth, averaged per record.
pub fn bcubed(predicted: &[Vec<u32>], truth: &GroundTruth) -> (f64, f64, f64) {
    let n: usize = predicted.iter().map(|c| c.len()).sum();
    if n == 0 {
        return (1.0, 1.0, 1.0);
    }
    // Truth cluster sizes per entity.
    let mut truth_size: FxHashMap<u64, usize> = FxHashMap::default();
    for cluster in predicted {
        for &r in cluster {
            let e = truth.entity_of(RecordId::new(r)).raw() as u64;
            *truth_size.entry(e).or_insert(0) += 1;
        }
    }
    let mut precision_sum = 0.0;
    let mut recall_sum = 0.0;
    for cluster in predicted {
        // Count, per truth entity, how many of its records sit in this
        // predicted cluster.
        let mut counts: FxHashMap<u64, usize> = FxHashMap::default();
        for &r in cluster {
            let e = truth.entity_of(RecordId::new(r)).raw() as u64;
            *counts.entry(e).or_insert(0) += 1;
        }
        for &r in cluster {
            let e = truth.entity_of(RecordId::new(r)).raw() as u64;
            let same_here = counts[&e] as f64;
            precision_sum += same_here / cluster.len() as f64;
            recall_sum += same_here / truth_size[&e] as f64;
        }
    }
    let p = precision_sum / n as f64;
    let r = recall_sum / n as f64;
    let f1 = if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    };
    (p, r, f1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_types::{CanonAttrId, EntityId};
    use proptest::prelude::*;

    /// Truth with clusters {0,1,2} and {3,4}.
    fn truth() -> GroundTruth {
        GroundTruth::new(
            vec![
                EntityId::new(0),
                EntityId::new(0),
                EntityId::new(0),
                EntityId::new(1),
                EntityId::new(1),
            ],
            vec![CanonAttrId::new(0)],
        )
    }

    #[test]
    fn perfect_prediction() {
        let m = PairMetrics::score(&[vec![0, 1, 2], vec![3, 4]], &truth());
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
        let (bp, br, bf) = bcubed(&[vec![0, 1, 2], vec![3, 4]], &truth());
        assert_eq!((bp, br, bf), (1.0, 1.0, 1.0));
    }

    #[test]
    fn all_singletons() {
        let pred: Vec<Vec<u32>> = (0..5).map(|i| vec![i]).collect();
        let m = PairMetrics::score(&pred, &truth());
        assert_eq!(m.true_positives, 0);
        assert_eq!(m.precision(), 1.0); // vacuous
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn one_big_cluster() {
        let m = PairMetrics::score(&[vec![0, 1, 2, 3, 4]], &truth());
        // Predicted pairs: 10. True positives: C(3,2)+C(2,2) = 4.
        assert_eq!(m.true_positives, 4);
        assert_eq!(m.false_positives, 6);
        assert_eq!(m.false_negatives, 0);
        assert!((m.precision() - 0.4).abs() < 1e-12);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn partial_split() {
        // {0,1} {2} {3,4}: tp = 1 + 1 = 2, fp = 0, fn = C(3,2)-1 = 2.
        let m = PairMetrics::score(&[vec![0, 1], vec![2], vec![3, 4]], &truth());
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_positives, 0);
        assert_eq!(m.false_negatives, 2);
        assert_eq!(m.precision(), 1.0);
        assert!((m.recall() - 0.5).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        let m = PairMetrics::score(&[vec![0, 1]], &truth());
        let s = m.to_string();
        assert!(s.contains("P=1.000"));
        assert!(s.contains("tp=1"));
    }

    /// Truth where every record is its own entity (no positive pairs).
    fn singleton_truth() -> GroundTruth {
        GroundTruth::new(
            (0..5).map(EntityId::new).collect(),
            vec![CanonAttrId::new(0)],
        )
    }

    /// Truth where all records are one entity.
    fn giant_truth() -> GroundTruth {
        GroundTruth::new(vec![EntityId::new(0); 5], vec![CanonAttrId::new(0)])
    }

    #[test]
    fn empty_dataset_is_well_defined() {
        // No records anywhere: vacuously perfect, never NaN.
        let t = GroundTruth::new(vec![], vec![CanonAttrId::new(0)]);
        let m = PairMetrics::score(&[], &t);
        assert_eq!((m.precision(), m.recall(), m.f1()), (1.0, 1.0, 1.0));
        assert_eq!(bcubed(&[], &t), (1.0, 1.0, 1.0));
    }

    #[test]
    fn singleton_truth_makes_recall_vacuous() {
        // Truth has zero positive pairs; an all-singleton prediction is
        // perfect, a giant cluster is pure false positives — all three
        // numbers stay defined either way.
        let t = singleton_truth();
        let pred: Vec<Vec<u32>> = (0..5).map(|i| vec![i]).collect();
        let m = PairMetrics::score(&pred, &t);
        assert_eq!((m.precision(), m.recall(), m.f1()), (1.0, 1.0, 1.0));

        let m = PairMetrics::score(&[vec![0, 1, 2, 3, 4]], &t);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 1.0); // vacuous: no positives to find
        assert_eq!(m.f1(), 0.0);
        for x in [m.precision(), m.recall(), m.f1()] {
            assert!(!x.is_nan());
        }
    }

    #[test]
    fn giant_truth_extremes_are_not_nan() {
        let t = giant_truth();
        for pred in [
            (0..5).map(|i| vec![i]).collect::<Vec<_>>(),
            vec![vec![0, 1, 2, 3, 4]],
        ] {
            let m = PairMetrics::score(&pred, &t);
            let (bp, br, bf) = bcubed(&pred, &t);
            for x in [m.precision(), m.recall(), m.f1(), bp, br, bf] {
                assert!(!x.is_nan(), "{pred:?}");
                assert!((0.0..=1.0).contains(&x), "{pred:?}");
            }
        }
        // The giant prediction exactly matches the giant truth.
        let m = PairMetrics::score(&[vec![0, 1, 2, 3, 4]], &t);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn bcubed_extremes_are_exact() {
        // All singletons vs truth {0,1,2},{3,4}: B³ precision is 1 (each
        // cluster is pure), recall is 1/|truth cluster| averaged.
        let pred: Vec<Vec<u32>> = (0..5).map(|i| vec![i]).collect();
        let (bp, br, bf) = bcubed(&pred, &truth());
        assert_eq!(bp, 1.0);
        let expected_recall = (3.0 * (1.0 / 3.0) + 2.0 * (1.0 / 2.0)) / 5.0;
        assert!((br - expected_recall).abs() < 1e-12);
        assert!(!bf.is_nan());

        // One giant cluster: recall is 1, precision the purity average.
        let (bp, br, bf) = bcubed(&[vec![0, 1, 2, 3, 4]], &truth());
        assert_eq!(br, 1.0);
        let expected_precision = (3.0 * (3.0 / 5.0) + 2.0 * (2.0 / 5.0)) / 5.0;
        assert!((bp - expected_precision).abs() < 1e-12);
        assert!(!bf.is_nan());
    }

    #[test]
    fn bcubed_penalizes_lumping_less_than_pairwise() {
        let (bp, _, _) = bcubed(&[vec![0, 1, 2, 3, 4]], &truth());
        let m = PairMetrics::score(&[vec![0, 1, 2, 3, 4]], &truth());
        // B³ precision (0.52) > pairwise precision (0.4) on this shape.
        assert!(bp > m.precision());
    }

    proptest! {
        /// Metrics are bounded and consistent for arbitrary partitions.
        #[test]
        fn metric_bounds(assignment in proptest::collection::vec(0u32..4, 5)) {
            // Build predicted clusters from a random label assignment.
            let mut clusters: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
            for (r, &c) in assignment.iter().enumerate() {
                clusters.entry(c).or_default().push(r as u32);
            }
            let pred: Vec<Vec<u32>> = clusters.into_values().collect();
            let t = truth();
            let m = PairMetrics::score(&pred, &t);
            prop_assert!((0.0..=1.0).contains(&m.precision()));
            prop_assert!((0.0..=1.0).contains(&m.recall()));
            prop_assert!((0.0..=1.0).contains(&m.f1()));
            prop_assert!(m.f1() <= m.precision().max(m.recall()) + 1e-12);
            let (bp, br, bf) = bcubed(&pred, &t);
            prop_assert!((0.0..=1.0).contains(&bp));
            prop_assert!((0.0..=1.0).contains(&br));
            prop_assert!((0.0..=1.0).contains(&bf));
        }
    }
}
