//! Streaming (incremental) blocking — the batch blocker's semantics
//! maintained under record insertions, for the session ingest path and
//! the serving layer's shard router.
//!
//! The batch [`crate::Blocker`] sees the whole dataset at once: it can
//! purge a block by its *final* size and prune pairs by collection-wide
//! weights. A streaming session sees one record at a time, so
//! [`StreamingBlocker`] keeps the block map live and answers, per
//! arriving record, *which earlier records share enough blocking
//! evidence to be worth joining against*:
//!
//! * blocks grow as records arrive; once a block outgrows
//!   `max_block_size` it is **purged going forward** — it stops
//!   producing candidates and drops its member list (records admitted
//!   while it was small already used its evidence; the batch blocker
//!   would have dropped those pairs too, so streaming purge is strictly
//!   more permissive, never less complete);
//! * a candidate must co-occur with the new record in at least
//!   `min_common_blocks` retained blocks (the CBS rule, counted against
//!   the blocks retained *at admission time*);
//! * `MetaBlocking::weighted` needs the collection-wide mean edge
//!   weight and therefore has no streaming analogue — it is ignored
//!   here (documented divergence from the batch pass).
//!
//! The blocker is session state: it serializes into the session
//! snapshot ([`StreamingBlocker::to_json`]) so a restored session
//! admits future records against exactly the blocks the checkpointed
//! one held.

use crate::{minhash, tokenize, BlockingScheme, MetaBlocking};
use hera_types::json::Json;
use hera_types::{HeraError, Result, Value};
use rustc_hash::FxHashMap;

/// One live block: the records holding its key, in arrival order.
/// `None` once purged (members dropped to bound memory).
type Block = Option<Vec<u32>>;

/// Incremental blocking state — see the module docs for semantics.
pub struct StreamingBlocker {
    scheme: BlockingScheme,
    meta: MetaBlocking,
    /// blocking key → live members, or `None` once purged.
    blocks: FxHashMap<u64, Block>,
    /// Records admitted so far (for stats/sanity only).
    records: u64,
}

impl StreamingBlocker {
    /// Creates a streaming blocker for a scheme, or `None` for
    /// [`BlockingScheme::None`] — no blocking means the caller keeps the
    /// unfiltered join path, bit-identical to not having a blocker at
    /// all.
    pub fn new(scheme: &BlockingScheme) -> Option<Self> {
        let meta = match scheme {
            BlockingScheme::None => return None,
            BlockingScheme::Token(p) => p.meta,
            BlockingScheme::QGram(p) => p.meta,
            BlockingScheme::MinHashLsh(p) => p.meta,
        };
        Some(Self {
            scheme: scheme.clone(),
            meta,
            blocks: FxHashMap::default(),
            records: 0,
        })
    }

    /// The scheme this blocker runs.
    pub fn scheme(&self) -> &BlockingScheme {
        &self.scheme
    }

    /// Records admitted so far.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// True before the first admission.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Blocking keys of one record under this blocker's scheme — sorted
    /// and deduplicated, a pure function of the values.
    pub fn keys_of(&self, values: &[Value]) -> Vec<u64> {
        keys_for(&self.scheme, values)
    }

    /// Admits record `rid` and returns the earlier records it may be
    /// compared against — every rid sharing ≥ `min_common_blocks`
    /// retained blocks with it, sorted ascending (deterministic
    /// regardless of map order). The record joins its blocks either way;
    /// a block pushed past `max_block_size` by this admission is purged
    /// for all *future* admissions.
    pub fn admit(&mut self, rid: u32, values: &[Value]) -> Vec<u32> {
        self.records += 1;
        let keys = self.keys_of(values);
        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        for &k in &keys {
            let block = self.blocks.entry(k).or_insert_with(|| Some(Vec::new()));
            let Some(members) = block else {
                continue; // purged: no candidates, no growth
            };
            for &m in members.iter() {
                *counts.entry(m).or_insert(0) += 1;
            }
            members.push(rid);
            if members.len() > self.meta.max_block_size {
                *block = None;
            }
        }
        let floor = self.meta.min_common_blocks.max(1);
        let mut out: Vec<u32> = counts
            .into_iter()
            .filter(|&(_, c)| c >= floor)
            .map(|(m, _)| m)
            .collect();
        out.sort_unstable();
        out
    }

    /// Encodes the block map (sorted by key for byte-stable snapshots):
    /// live blocks with their members in arrival order, purged blocks as
    /// bare keys. The scheme itself is *not* serialized — it is config,
    /// and the restoring session supplies it (mismatches are the
    /// session's config-compatibility check to make).
    pub fn to_json(&self) -> Json {
        let mut live: Vec<(&u64, &Vec<u32>)> = Vec::new();
        let mut purged: Vec<u64> = Vec::new();
        for (k, b) in &self.blocks {
            match b {
                Some(members) => live.push((k, members)),
                None => purged.push(*k),
            }
        }
        live.sort_unstable_by_key(|(k, _)| **k);
        purged.sort_unstable();
        Json::Obj(vec![
            ("records".into(), Json::Int(self.records as i64)),
            (
                "blocks".into(),
                Json::Arr(
                    live.into_iter()
                        .map(|(k, members)| {
                            Json::Obj(vec![
                                ("key".into(), Json::Str(format!("{k:016x}"))),
                                (
                                    "members".into(),
                                    Json::Arr(
                                        members.iter().map(|&m| Json::Int(m as i64)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "purged".into(),
                Json::Arr(
                    purged
                        .into_iter()
                        .map(|k| Json::Str(format!("{k:016x}")))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes a blocker checkpointed by [`StreamingBlocker::to_json`],
    /// under the restoring session's `scheme` (must match the
    /// checkpointing session's for the continuation to be equivalent).
    ///
    /// # Errors
    /// [`HeraError::Corrupt`] on malformed keys, and
    /// [`HeraError::InvalidConfig`] when `scheme` is
    /// [`BlockingScheme::None`] (state exists but config says no
    /// blocking — the caller's config check should have caught this).
    pub fn from_json(scheme: &BlockingScheme, json: &Json) -> Result<Self> {
        let mut blocker = Self::new(scheme).ok_or_else(|| {
            HeraError::InvalidConfig(
                "snapshot carries streaming-blocker state but the restore config disables \
                 blocking"
                    .into(),
            )
        })?;
        let records = json.expect("records")?.as_i64()?;
        if records < 0 {
            return Err(HeraError::Corrupt("negative blocker record count".into()));
        }
        blocker.records = records as u64;
        let parse_key = |j: &Json| -> Result<u64> {
            let s = j.as_str()?;
            u64::from_str_radix(s, 16)
                .map_err(|_| HeraError::Corrupt(format!("bad blocking key '{s}'")))
        };
        for b in json.expect("blocks")?.as_arr()? {
            let key = parse_key(b.expect("key")?)?;
            let mut members = Vec::new();
            for m in b.expect("members")?.as_arr()? {
                members.push(m.as_u32()?);
            }
            if members.len() > blocker.meta.max_block_size {
                return Err(HeraError::Corrupt(format!(
                    "live block {key:016x} exceeds max_block_size"
                )));
            }
            if blocker.blocks.insert(key, Some(members)).is_some() {
                return Err(HeraError::Corrupt(format!(
                    "duplicate blocking key {key:016x}"
                )));
            }
        }
        for p in json.expect("purged")?.as_arr()? {
            let key = parse_key(p)?;
            if blocker.blocks.insert(key, None).is_some() {
                return Err(HeraError::Corrupt(format!(
                    "duplicate blocking key {key:016x}"
                )));
            }
        }
        Ok(blocker)
    }
}

/// Blocking keys of a record's values under a scheme — the shared
/// extraction the batch blocker, the streaming blocker, and the shard
/// router all use. Sorted and deduplicated; empty for all-null records.
pub(crate) fn keys_for(scheme: &BlockingScheme, values: &[Value]) -> Vec<u64> {
    match scheme {
        BlockingScheme::None => Vec::new(),
        BlockingScheme::Token(p) => tokenize::word_value_tokens(values, p.include_full_value),
        BlockingScheme::QGram(p) => tokenize::qgram_tokens(values, p.q),
        BlockingScheme::MinHashLsh(p) => minhash::band_tokens(
            &tokenize::word_value_tokens(values, true),
            p.bands,
            p.rows,
            p.seed,
        ),
    }
}

/// Routes a record to one of `shards` partitions by its minimum word
/// token — a 1-row MinHash, so records sharing their rarest rendering
/// tend to co-locate and most duplicate pairs resolve inside one shard.
/// Pure function of the values: the same record always routes the same
/// way, at any ingest order. Records with no tokens (all-null) go to
/// shard 0.
///
/// Routing is a *locality* heuristic, never a correctness boundary: a
/// serving layer's cross-shard boundary pass re-examines everything, so
/// a duplicate pair split across shards is still found — just later.
pub fn route_shard(values: &[Value], shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    if shards == 1 {
        return 0;
    }
    let toks = tokenize::word_value_tokens(values, false);
    match toks.iter().min() {
        Some(&min) => (min % shards as u64) as usize,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(texts: &[&str]) -> Vec<Value> {
        texts.iter().map(|t| Value::from(*t)).collect()
    }

    fn small_token(max_block_size: usize, min_common_blocks: u32) -> BlockingScheme {
        BlockingScheme::Token(crate::TokenParams {
            include_full_value: true,
            meta: MetaBlocking {
                max_block_size,
                min_common_blocks,
                weighted: false,
            },
        })
    }

    #[test]
    fn none_scheme_has_no_blocker() {
        assert!(StreamingBlocker::new(&BlockingScheme::None).is_none());
    }

    #[test]
    fn cbs_threshold_filters_single_block_coincidences() {
        // min_common_blocks = 2: sharing one token is not enough.
        let mut b = StreamingBlocker::new(&small_token(100, 2)).unwrap();
        assert!(b.admit(0, &vals(&["alice smith"])).is_empty());
        assert!(b.admit(1, &vals(&["bob smith"])).is_empty(), "one shared");
        let c = b.admit(2, &vals(&["alice smith"]));
        assert_eq!(c, vec![0], "shares alice+smith(+full) with 0 only");
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn purged_blocks_stop_producing_candidates() {
        // max_block_size = 2: the third record sharing a key purges it.
        let mut b = StreamingBlocker::new(&small_token(2, 1)).unwrap();
        assert!(b.admit(0, &vals(&["common"])).is_empty());
        assert_eq!(b.admit(1, &vals(&["common"])), vec![0]);
        // This admission fills the block past 2 and purges it…
        assert_eq!(b.admit(2, &vals(&["common"])), vec![0, 1]);
        // …so later records see nothing through it.
        assert!(b.admit(3, &vals(&["common"])).is_empty());
    }

    #[test]
    fn admit_order_is_deterministic_and_sorted() {
        let mut b = StreamingBlocker::new(&small_token(100, 1)).unwrap();
        for rid in 0..20 {
            b.admit(rid, &vals(&["shared key"]));
        }
        let c = b.admit(20, &vals(&["shared key"]));
        assert_eq!(c, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn json_roundtrip_preserves_future_admissions() {
        let scheme = small_token(2, 1);
        let mut live = StreamingBlocker::new(&scheme).unwrap();
        for (rid, text) in [(0, "aa bb"), (1, "aa cc"), (2, "aa dd"), (3, "ee ff")] {
            live.admit(rid, &vals(&[text]));
        }
        let dump = live.to_json().to_string_compact();
        let mut restored =
            StreamingBlocker::from_json(&scheme, &hera_types::json::parse(&dump).unwrap()).unwrap();
        assert_eq!(restored.to_json().to_string_compact(), dump, "fixpoint");
        assert_eq!(restored.len(), live.len());
        let a = live.admit(9, &vals(&["aa bb ee"]));
        let b = restored.admit(9, &vals(&["aa bb ee"]));
        assert_eq!(a, b, "restored blocker admits identically");
    }

    #[test]
    fn from_json_rejects_none_scheme() {
        let dump = StreamingBlocker::new(&small_token(10, 1))
            .unwrap()
            .to_json()
            .to_string_compact();
        let err = StreamingBlocker::from_json(
            &BlockingScheme::None,
            &hera_types::json::parse(&dump).unwrap(),
        )
        .err()
        .expect("None scheme must be rejected");
        assert!(matches!(err, HeraError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn route_shard_is_stable_and_in_range() {
        let v = vals(&["norman street", "los angeles"]);
        for shards in 1..=8 {
            let s = route_shard(&v, shards);
            assert!(s < shards);
            assert_eq!(s, route_shard(&v, shards), "pure function");
        }
        assert_eq!(route_shard(&[Value::Null], 4), 0, "token-free fallback");
        // Identical values co-locate at every shard count.
        let w = vals(&["norman street", "los angeles"]);
        assert_eq!(route_shard(&v, 5), route_shard(&w, 5));
    }
}
