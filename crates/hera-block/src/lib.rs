//! Blocking and meta-blocking for HERA — sub-quadratic candidate
//! generation ahead of the similarity join.
//!
//! The paper's value-pair index is fed by a similarity self-join whose
//! candidate generation is quadratic-prone in the record count. In the
//! blocking literature (token blocking, q-gram blocking, MinHash-LSH,
//! and the meta-blocking refinements of block purging and edge pruning)
//! the join is preceded by a cheap, schema-agnostic pass that picks the
//! record pairs worth comparing at all. This crate implements that pass:
//!
//! 1. every record is mapped to a set of 64-bit *blocking keys*
//!    ([`BlockingScheme::Token`], [`BlockingScheme::QGram`],
//!    [`BlockingScheme::MinHashLsh`]);
//! 2. records sharing a key form a *block*;
//! 3. meta-blocking ([`MetaBlocking`]) purges oversized blocks and
//!    prunes weakly co-blocked pairs (CBS weighting);
//! 4. the surviving pairs come out as a
//!    [`hera_join::RecordPairSet`] for
//!    [`hera_join::SimilarityJoin::join_dataset_with`].
//!
//! Blocking trades recall for speed: the emitted pair set is measured by
//! **pair completeness** (fraction of ground-truth duplicate pairs kept)
//! against **reduction ratio** (fraction of the quadratic pair space
//! skipped) — see the `exp_blocking` harness in hera-bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod meta;
mod minhash;
mod streaming;
mod tokenize;

pub use meta::MetaBlocking;
pub use streaming::{route_shard, StreamingBlocker};

use hera_join::RecordPairSet;
use hera_types::Dataset;
use rustc_hash::FxHashMap;

/// Which blocking keys to derive from each record.
///
/// All schemes are schema-agnostic: keys are drawn from the bag of a
/// record's values, never from field positions, so heterogeneous
/// schemas block against each other naturally.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockingScheme {
    /// No blocking — the join enumerates candidates from the value
    /// universe exactly as before (the default; results are untouched).
    None,
    /// Word tokens of every value, plus one whole-value key per value
    /// (ids, full titles, dates, and exact numbers stay discriminative
    /// when word blocks grow past the purge limit).
    Token(TokenParams),
    /// Character q-grams of every value — robust to typos (one edit
    /// perturbs at most `q` grams) at the price of more keys per record.
    QGram(QGramParams),
    /// MinHash-LSH banding over the record's token set: `bands` keys of
    /// `rows` folded min-hashes each, passing pairs whose token-set
    /// Jaccard clears the `1 − (1 − s^rows)^bands` S-curve.
    MinHashLsh(LshParams),
}

/// Parameters of [`BlockingScheme::Token`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenParams {
    /// Emit one whole-value key per value in addition to word tokens.
    pub include_full_value: bool,
    /// Meta-blocking pass over the produced blocks.
    pub meta: MetaBlocking,
}

/// Parameters of [`BlockingScheme::QGram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QGramParams {
    /// Gram length for blocking keys (independent of the join's `q`;
    /// longer grams make rarer, more selective blocks).
    pub q: usize,
    /// Meta-blocking pass over the produced blocks.
    pub meta: MetaBlocking,
}

/// Parameters of [`BlockingScheme::MinHashLsh`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshParams {
    /// Number of bands (keys per record).
    pub bands: usize,
    /// Min-hash rows folded into each band key.
    pub rows: usize,
    /// Seed of the min-hash family (fixed default; change to re-draw).
    pub seed: u64,
    /// Meta-blocking pass over the produced blocks.
    pub meta: MetaBlocking,
}

impl BlockingScheme {
    /// Token blocking with default meta-blocking (purge > 100, CBS ≥ 2).
    pub fn token() -> Self {
        Self::Token(TokenParams {
            include_full_value: true,
            meta: MetaBlocking::default(),
        })
    }

    /// Q-gram blocking with `q = 5`, a looser purge (blocks ≤ 150), and
    /// CBS pruning disabled (`min_common_blocks = 1`): a shared 5-gram
    /// is already selective, and requiring two shared gram blocks drops
    /// heavily-corrupted duplicates whose rarest gram survives in only
    /// one small block (together those two defaults cost ~7 points of
    /// pair completeness at 10⁵ records for a reduction ratio that is
    /// already > 0.999).
    pub fn qgram() -> Self {
        Self::QGram(QGramParams {
            q: 5,
            meta: MetaBlocking {
                max_block_size: 150,
                min_common_blocks: 1,
                weighted: false,
            },
        })
    }

    /// MinHash-LSH with 24 bands × 2 rows. Bands are already conjunctive
    /// evidence, so CBS pruning is disabled (`min_common_blocks = 1`).
    pub fn lsh() -> Self {
        Self::MinHashLsh(LshParams {
            bands: 24,
            rows: 2,
            seed: 0x4845_5241, // "HERA"
            meta: MetaBlocking {
                min_common_blocks: 1,
                ..MetaBlocking::default()
            },
        })
    }

    /// Short scheme name for journals, CLI, and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Token(_) => "token",
            Self::QGram(_) => "qgram",
            Self::MinHashLsh(_) => "lsh",
        }
    }

    /// Parses a CLI scheme name (`none`, `token`, `qgram`, `lsh`) into
    /// the scheme with its default parameters.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(Self::None),
            "token" => Ok(Self::token()),
            "qgram" => Ok(Self::qgram()),
            "lsh" => Ok(Self::lsh()),
            other => Err(format!(
                "unknown blocking scheme '{other}' (expected none, token, qgram, or lsh)"
            )),
        }
    }
}

/// Counters describing one blocking pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingStats {
    /// Scheme name ([`BlockingScheme::name`]).
    pub scheme: String,
    /// Records blocked.
    pub records: usize,
    /// Blocks holding at least two records (pair-producing blocks).
    pub blocks: u64,
    /// Of those, blocks dropped by the size purge.
    pub blocks_purged: u64,
    /// Distinct record pairs co-blocked in retained blocks.
    pub pairs_considered: u64,
    /// Pairs surviving meta-blocking — the blocker's output size.
    pub pairs_emitted: u64,
    /// Pairs dropped by edge pruning (`considered − emitted`).
    pub pairs_pruned: u64,
}

impl BlockingStats {
    /// Reduction ratio vs the quadratic pair space:
    /// `1 − emitted / (n·(n−1)/2)`. Zero for trivial (`n < 2`) inputs.
    pub fn reduction_ratio(&self) -> f64 {
        let n = self.records as f64;
        let total = n * (n - 1.0) / 2.0;
        if total <= 0.0 {
            return 0.0;
        }
        1.0 - self.pairs_emitted as f64 / total
    }
}

/// Result of a blocking pass: the allowed record pairs plus counters.
#[derive(Debug, Clone)]
pub struct BlockingOutcome {
    /// Record pairs the similarity join is allowed to compare.
    pub pairs: RecordPairSet,
    /// Funnel counters for reports and the `blocking` journal span.
    pub stats: BlockingStats,
}

/// The blocking stage. Runs ahead of the similarity join and emits the
/// candidate record pairs the join (and through it the value-pair
/// index) consumes.
///
/// Output is deterministic and independent of the worker-thread count:
/// key extraction is pure per record and merged in record order, and
/// the meta-blocking pass sorts its pair multiset before counting.
pub struct Blocker {
    scheme: BlockingScheme,
    recorder: hera_obs::Recorder,
    num_threads: usize,
}

impl Blocker {
    /// Creates a blocker for a concrete scheme.
    ///
    /// # Panics
    ///
    /// If the scheme is [`BlockingScheme::None`] — "no blocking" means
    /// the all-pairs join runs instead; there is no pair set to build.
    pub fn new(scheme: BlockingScheme) -> Self {
        assert!(
            scheme != BlockingScheme::None,
            "BlockingScheme::None has no blocker stage; run the all-pairs join instead"
        );
        Self {
            scheme,
            recorder: hera_obs::Recorder::disabled(),
            num_threads: 0,
        }
    }

    /// Attaches a journal recorder; the pass emits a `blocking` span
    /// with its funnel counters (all order-independent totals, so the
    /// span belongs to the deterministic core journal).
    pub fn with_recorder(mut self, recorder: hera_obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Sets the worker-thread count for key extraction (`0` = auto).
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Blocks a dataset into the candidate record-pair set.
    pub fn block(&self, ds: &Dataset) -> BlockingOutcome {
        let t0 = std::time::Instant::now();
        let keys = self.record_keys(ds);

        let mut blocks: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (rid, toks) in keys.iter().enumerate() {
            for &t in toks {
                blocks.entry(t).or_default().push(rid as u32);
            }
        }
        let meta = match &self.scheme {
            BlockingScheme::None => unreachable!("rejected in Blocker::new"),
            BlockingScheme::Token(p) => p.meta,
            BlockingScheme::QGram(p) => p.meta,
            BlockingScheme::MinHashLsh(p) => p.meta,
        };
        let (pairs, counters) = meta::prune_blocks(&blocks, &meta);

        let stats = BlockingStats {
            scheme: self.scheme.name().to_owned(),
            records: ds.len(),
            blocks: counters.blocks,
            blocks_purged: counters.blocks_purged,
            pairs_considered: counters.pairs_considered,
            pairs_emitted: counters.pairs_emitted,
            pairs_pruned: counters.pairs_considered - counters.pairs_emitted,
        };
        self.recorder.span(
            "blocking",
            None,
            &[
                ("records", stats.records as i64),
                ("blocks", stats.blocks as i64),
                ("blocks_purged", stats.blocks_purged as i64),
                ("pairs_considered", stats.pairs_considered as i64),
                ("pairs_emitted", stats.pairs_emitted as i64),
                ("pairs_pruned", stats.pairs_pruned as i64),
            ],
        );
        self.recorder.timing("blocking", None, t0.elapsed());
        BlockingOutcome {
            pairs: RecordPairSet::from_pairs(pairs),
            stats,
        }
    }

    /// Blocking keys of every record, in record order. Extraction is a
    /// pure function of the record, so it shards freely across threads;
    /// the shards are reassembled in record order, making the result
    /// identical at every thread count.
    fn record_keys(&self, ds: &Dataset) -> Vec<Vec<u64>> {
        let extract = |rec: &hera_types::Record| -> Vec<u64> {
            match &self.scheme {
                BlockingScheme::None => unreachable!("rejected in Blocker::new"),
                BlockingScheme::Token(p) => {
                    tokenize::word_value_tokens(&rec.values, p.include_full_value)
                }
                BlockingScheme::QGram(p) => tokenize::qgram_tokens(&rec.values, p.q),
                BlockingScheme::MinHashLsh(p) => minhash::band_tokens(
                    &tokenize::word_value_tokens(&rec.values, true),
                    p.bands,
                    p.rows,
                    p.seed,
                ),
            }
        };
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        let records = &ds.records;
        if threads <= 1 || records.len() < 2048 {
            return records.iter().map(extract).collect();
        }
        let chunk_size = records.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = records
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter().map(extract).collect::<Vec<_>>()))
                .collect();
            let mut out = Vec::with_capacity(records.len());
            for h in handles {
                out.extend(h.join().expect("blocking key extraction thread panicked"));
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_types::motivating_example;

    #[test]
    fn scheme_names_and_parse_round_trip() {
        for name in ["none", "token", "qgram", "lsh"] {
            let scheme = BlockingScheme::parse(name).unwrap();
            assert_eq!(scheme.name(), name);
        }
        assert!(BlockingScheme::parse("bogus").is_err());
    }

    #[test]
    #[should_panic(expected = "None has no blocker")]
    fn none_scheme_rejected() {
        Blocker::new(BlockingScheme::None);
    }

    #[test]
    fn token_blocking_pairs_duplicate_records() {
        // The motivating example's records of one entity share values, so
        // token blocking must co-block them.
        let ds = motivating_example();
        let outcome = Blocker::new(BlockingScheme::token()).block(&ds);
        assert!(!outcome.pairs.is_empty());
        assert_eq!(outcome.stats.records, ds.len());
        assert_eq!(
            outcome.stats.pairs_pruned,
            outcome.stats.pairs_considered - outcome.stats.pairs_emitted
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let ds = motivating_example();
        for scheme in [
            BlockingScheme::token(),
            BlockingScheme::qgram(),
            BlockingScheme::lsh(),
        ] {
            let reference = Blocker::new(scheme.clone()).with_threads(1).block(&ds);
            for threads in 2..=8 {
                let got = Blocker::new(scheme.clone())
                    .with_threads(threads)
                    .block(&ds);
                assert_eq!(got.pairs, reference.pairs, "{} @ {threads}", scheme.name());
                assert_eq!(got.stats, reference.stats, "{} @ {threads}", scheme.name());
            }
        }
    }

    #[test]
    fn reduction_ratio_sane() {
        let stats = BlockingStats {
            scheme: "token".into(),
            records: 100,
            blocks: 10,
            blocks_purged: 0,
            pairs_considered: 99,
            pairs_emitted: 99,
            pairs_pruned: 0,
        };
        let rr = stats.reduction_ratio();
        assert!((rr - (1.0 - 99.0 / 4950.0)).abs() < 1e-12);
    }

    #[test]
    fn blocking_span_emitted() {
        let ds = motivating_example();
        let (recorder, sink) = hera_obs::Recorder::to_memory();
        Blocker::new(BlockingScheme::token())
            .with_recorder(recorder)
            .block(&ds);
        let journal = sink.contents();
        assert!(
            journal.contains("\"blocking\""),
            "no blocking span in journal: {journal}"
        );
    }
}
