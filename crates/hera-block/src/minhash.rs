//! MinHash-LSH banding over record token sets.
//!
//! Each record's token set is summarized by `bands × rows` min-hashes;
//! the `rows` minima of one band are folded into a single 64-bit band
//! key. Two records collide on a band with probability `s^rows` (where
//! `s` is the Jaccard similarity of their token sets), so the chance of
//! sharing at least one band is `1 − (1 − s^rows)^bands` — the classic
//! S-curve that passes high-similarity pairs and drops dissimilar ones.

/// SplitMix64 — the same tiny mixer hera-datagen uses for stream
/// derivation; here it is the (seeded) hash family for min-hashing.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Band keys of one record's token set, sorted and deduplicated.
/// Empty token sets produce no keys (the record blocks with nothing).
pub(crate) fn band_tokens(tokens: &[u64], bands: usize, rows: usize, seed: u64) -> Vec<u64> {
    if tokens.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(bands);
    for band in 0..bands {
        // Fold the band's row minima into one key; the accumulator is
        // seeded per band so identical minima in different bands cannot
        // collide into one block.
        let mut key = splitmix64(seed ^ ((band as u64) << 32));
        for row in 0..rows {
            let hseed = splitmix64(seed.wrapping_add(((band * rows + row) as u64) | 1 << 63));
            let mut min = u64::MAX;
            for &t in tokens {
                let h = splitmix64(t ^ hseed);
                if h < min {
                    min = h;
                }
            }
            key = splitmix64(key ^ min);
        }
        out.push(key);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_share_every_band() {
        let toks = vec![1u64, 5, 9, 42];
        let a = band_tokens(&toks, 8, 2, 7);
        let b = band_tokens(&toks, 8, 2, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_set_has_no_bands() {
        assert!(band_tokens(&[], 8, 2, 7).is_empty());
    }

    #[test]
    fn disjoint_sets_rarely_collide() {
        let a: Vec<u64> = (0..20).map(splitmix64).collect();
        let b: Vec<u64> = (100..120).map(splitmix64).collect();
        let ba = band_tokens(&a, 16, 2, 7);
        let bb = band_tokens(&b, 16, 2, 7);
        let shared = ba.iter().filter(|k| bb.contains(k)).count();
        assert_eq!(shared, 0, "disjoint token sets collided on a band");
    }

    #[test]
    fn similar_sets_collide_on_some_band() {
        // 18 of 20 tokens shared → Jaccard ≈ 0.82; with 16 bands of 2
        // rows the collision chance is ≈ 1-(1-0.67)^16 ≈ 1-2e-8.
        let a: Vec<u64> = (0..20).map(splitmix64).collect();
        let mut b = a.clone();
        b[0] = splitmix64(999);
        b[1] = splitmix64(998);
        b.sort_unstable();
        let ba = band_tokens(&a, 16, 2, 7);
        let bb = band_tokens(&b, 16, 2, 7);
        assert!(ba.iter().any(|k| bb.contains(k)));
    }

    #[test]
    fn seed_changes_bands() {
        let toks = vec![1u64, 5, 9, 42];
        assert_ne!(band_tokens(&toks, 8, 2, 7), band_tokens(&toks, 8, 2, 8));
    }
}
