//! Schema-agnostic record tokenization for blocking keys.
//!
//! Blocking keys deliberately ignore which *field* a value sits in — the
//! whole point of the heterogeneous-record regime is that schemas do not
//! line up, so keys are drawn from the bag of all values of a record
//! (the "schema-agnostic" setting of the blocking literature).

use rustc_hash::FxHasher;
use std::hash::Hasher;

/// Hashes one textual token into a 64-bit blocking key.
pub(crate) fn hash_token(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Word tokens of a record's values (folded), optionally joined by one
/// whole-value token per value. Sorted and deduplicated.
///
/// The whole-value tokens matter at scale: word vocabularies are small
/// and their blocks get purged as oversized, while full renderings
/// (external ids, complete titles, dates, exact numbers) stay rare and
/// carry the discriminative signal.
pub(crate) fn word_value_tokens(
    values: &[hera_types::Value],
    include_full_value: bool,
) -> Vec<u64> {
    let mut out = Vec::new();
    for v in values {
        if v.is_null() {
            continue;
        }
        let folded = hera_sim::text::fold(&v.to_text());
        for w in folded.split_whitespace() {
            out.push(hash_token(w.as_bytes()));
        }
        if include_full_value && !folded.is_empty() {
            out.push(hash_token(folded.as_bytes()));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Union of the q-gram sets of a record's values (folded), sorted and
/// deduplicated. More robust to typos than word tokens (a single edit
/// perturbs at most `q` grams) at the price of more keys per record.
pub(crate) fn qgram_tokens(values: &[hera_types::Value], q: usize) -> Vec<u64> {
    let mut out = Vec::new();
    for v in values {
        if v.is_null() {
            continue;
        }
        out.extend(hera_sim::text::folded_qgram_set(&v.to_text(), q));
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hera_types::Value;

    #[test]
    fn word_tokens_fold_split_and_dedup() {
        let vals = vec![Value::from("Norman Street"), Value::from("norman")];
        let toks = word_value_tokens(&vals, false);
        // {"norman", "street"} — the repeated word collapses.
        assert_eq!(toks.len(), 2);
        assert!(toks.contains(&hash_token(b"norman")));
        assert!(toks.contains(&hash_token(b"street")));
    }

    #[test]
    fn full_value_token_added() {
        let vals = vec![Value::from("Norman Street")];
        let with = word_value_tokens(&vals, true);
        let without = word_value_tokens(&vals, false);
        assert_eq!(with.len(), without.len() + 1);
        assert!(with.contains(&hash_token(b"norman street")));
    }

    #[test]
    fn nulls_and_empties_yield_no_tokens() {
        assert!(word_value_tokens(&[Value::Null, Value::from("")], true).is_empty());
        assert!(qgram_tokens(&[Value::Null, Value::from("")], 3).is_empty());
    }

    #[test]
    fn numbers_tokenize_via_rendering() {
        let toks = word_value_tokens(&[Value::from(1984i64)], true);
        assert_eq!(toks, vec![hash_token(b"1984")]);
    }

    #[test]
    fn qgram_tokens_union_values() {
        let toks = qgram_tokens(&[Value::from("abcd"), Value::from("bcde")], 3);
        // abc, bcd (shared), cde → 3 distinct grams.
        assert_eq!(toks.len(), 3);
    }
}
