//! Meta-blocking: block purging and block-graph edge pruning.
//!
//! Raw blocking collections are noisy — stop-word-like keys produce huge
//! blocks that are all cost and no signal, and a single shared rare key
//! can still be coincidence. Meta-blocking treats the collection as a
//! graph (records are nodes, an edge per co-blocked pair weighted by how
//! many blocks the pair shares) and keeps only the edges worth
//! comparing:
//!
//! * **Block purging** drops blocks larger than `max_block_size` before
//!   any pair is enumerated (their pair cost is quadratic in block size
//!   while their evidence value per pair is lowest).
//! * **CBS weighting + pruning** counts, for each surviving pair, the
//!   number of common blocks (the CBS scheme) and keeps pairs with
//!   weight `≥ min_common_blocks`; with `weighted` set, pairs must also
//!   reach the collection-wide mean weight (weighted-edge pruning).

use rustc_hash::FxHashMap;

/// Meta-blocking parameters, shared by every scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaBlocking {
    /// Purge blocks with more records than this before pair enumeration.
    pub max_block_size: usize,
    /// Keep only record pairs sharing at least this many retained blocks
    /// (CBS weight threshold; 1 disables the filter).
    pub min_common_blocks: u32,
    /// Additionally require each pair's CBS weight to reach the mean
    /// weight over all co-blocked pairs (weighted-edge pruning).
    pub weighted: bool,
}

impl Default for MetaBlocking {
    fn default() -> Self {
        Self {
            max_block_size: 100,
            min_common_blocks: 2,
            weighted: false,
        }
    }
}

/// Counters produced while pruning a block collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PruneCounters {
    /// Blocks holding ≥ 2 records (only those can produce pairs).
    pub blocks: u64,
    /// Of those, blocks dropped by the size purge.
    pub blocks_purged: u64,
    /// Distinct record pairs co-blocked in retained blocks.
    pub pairs_considered: u64,
    /// Pairs surviving edge pruning (the blocker's output).
    pub pairs_emitted: u64,
}

/// Prunes a token → members block map into the surviving record pairs.
///
/// Deterministic regardless of map iteration order: the pair multiset is
/// sorted before counting, and every counter is an order-independent
/// total.
pub(crate) fn prune_blocks(
    blocks: &FxHashMap<u64, Vec<u32>>,
    meta: &MetaBlocking,
) -> (Vec<(u32, u32)>, PruneCounters) {
    let mut c = PruneCounters::default();
    // One entry per (pair, block) co-occurrence, packed for cheap sorting.
    let mut cooc: Vec<u64> = Vec::new();
    for members in blocks.values() {
        if members.len() < 2 {
            continue;
        }
        c.blocks += 1;
        if members.len() > meta.max_block_size {
            c.blocks_purged += 1;
            continue;
        }
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                cooc.push(((lo as u64) << 32) | hi as u64);
            }
        }
    }
    cooc.sort_unstable();

    // Run-length pass 1: distinct pairs and (for weighted pruning) the
    // mean CBS weight = total co-occurrences / distinct pairs.
    let mut distinct = 0u64;
    let mut i = 0;
    while i < cooc.len() {
        let mut j = i + 1;
        while j < cooc.len() && cooc[j] == cooc[i] {
            j += 1;
        }
        distinct += 1;
        i = j;
    }
    c.pairs_considered = distinct;
    let mean_weight = if distinct == 0 {
        0.0
    } else {
        cooc.len() as f64 / distinct as f64
    };
    let threshold = meta.min_common_blocks.max(1) as u64;

    // Run-length pass 2: keep pairs clearing the thresholds.
    let mut kept: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < cooc.len() {
        let mut j = i + 1;
        while j < cooc.len() && cooc[j] == cooc[i] {
            j += 1;
        }
        let weight = (j - i) as u64;
        if weight >= threshold && (!meta.weighted || weight as f64 >= mean_weight) {
            let key = cooc[i];
            kept.push(((key >> 32) as u32, (key & 0xFFFF_FFFF) as u32));
        }
        i = j;
    }
    c.pairs_emitted = kept.len() as u64;
    (kept, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(blocks: &[&[u32]]) -> FxHashMap<u64, Vec<u32>> {
        blocks
            .iter()
            .enumerate()
            .map(|(i, m)| (i as u64, m.to_vec()))
            .collect()
    }

    #[test]
    fn singleton_blocks_produce_nothing() {
        let blocks = map(&[&[1], &[2]]);
        let (pairs, c) = prune_blocks(&blocks, &MetaBlocking::default());
        assert!(pairs.is_empty());
        assert_eq!(c.blocks, 0);
    }

    #[test]
    fn oversized_blocks_are_purged() {
        let meta = MetaBlocking {
            max_block_size: 3,
            min_common_blocks: 1,
            weighted: false,
        };
        let blocks = map(&[&[0, 1, 2, 3, 4], &[5, 6]]);
        let (pairs, c) = prune_blocks(&blocks, &meta);
        assert_eq!(pairs, vec![(5, 6)]);
        assert_eq!(c.blocks, 2);
        assert_eq!(c.blocks_purged, 1);
    }

    #[test]
    fn cbs_threshold_prunes_single_cooccurrence() {
        let meta = MetaBlocking {
            max_block_size: 100,
            min_common_blocks: 2,
            weighted: false,
        };
        // (1,2) share two blocks, (1,3) only one.
        let blocks = map(&[&[1, 2, 3], &[1, 2]]);
        let (pairs, c) = prune_blocks(&blocks, &meta);
        assert_eq!(pairs, vec![(1, 2)]);
        assert_eq!(c.pairs_considered, 3);
        assert_eq!(c.pairs_emitted, 1);
    }

    #[test]
    fn weighted_pruning_uses_mean() {
        let meta = MetaBlocking {
            max_block_size: 100,
            min_common_blocks: 1,
            weighted: true,
        };
        // Weights: (1,2) → 3, (3,4) → 1; mean = 2 → only (1,2) survives.
        let blocks = map(&[&[1, 2], &[1, 2], &[1, 2], &[3, 4]]);
        let (pairs, _) = prune_blocks(&blocks, &meta);
        assert_eq!(pairs, vec![(1, 2)]);
    }

    #[test]
    fn output_is_sorted_and_normalized() {
        let meta = MetaBlocking {
            max_block_size: 100,
            min_common_blocks: 1,
            weighted: false,
        };
        let blocks = map(&[&[9, 3, 7], &[1, 2]]);
        let (pairs, _) = prune_blocks(&blocks, &meta);
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted);
        assert!(pairs.iter().all(|&(a, b)| a < b));
    }
}
