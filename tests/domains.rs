//! Domain-generality tests: nothing in the pipeline is movie-specific.
//! The publications domain (DBLP/Cora-style bibliographic records)
//! exercises the identical code paths with a different attribute mix.

use hera::{exchange_small, Hera, HeraConfig, PairMetrics, RSwoosh, Resolver, TypeDispatch};
use hera_datagen::{pubs, Generator};

#[test]
fn hera_resolves_publications() {
    let ds = Generator::new(pubs::publications(400, 60, 21)).generate();
    assert_eq!(ds.truth.distinct_attr_count(), 14);
    let result = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&ds)
        .unwrap();
    let m = PairMetrics::score(&result.clusters(), &ds.truth);
    assert!(m.precision() > 0.9, "{m}");
    assert!(m.recall() > 0.8, "{m}");
}

#[test]
fn information_loss_story_holds_on_publications() {
    let ds = Generator::new(pubs::publications(400, 60, 22)).generate();
    let (homo, plan) = exchange_small(&ds, 3);
    assert!(plan.dropped_value_count > 0);
    let metric = TypeDispatch::paper_default();
    let hera_f1 = PairMetrics::score(
        &Hera::builder(HeraConfig::new(0.5, 0.5))
            .build()
            .run(&ds)
            .unwrap()
            .clusters(),
        &ds.truth,
    )
    .f1();
    let swoosh_f1 =
        PairMetrics::score(&RSwoosh::new(0.5, 0.5).resolve(&homo, &metric), &homo.truth).f1();
    assert!(
        hera_f1 > swoosh_f1,
        "HERA {hera_f1:.3} vs R-Swoosh-on-exchanged {swoosh_f1:.3}"
    );
}

#[test]
fn schema_discovery_works_across_domains() {
    let ds = Generator::new(pubs::publications(400, 60, 23)).generate();
    let result = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&ds)
        .unwrap();
    assert!(
        !result.schema_matchings.is_empty(),
        "no schema matchings decided on publications"
    );
    let correct = result
        .schema_matchings
        .iter()
        .filter(|m| ds.truth.same_attr(m.attr, m.partner))
        .count();
    assert!(
        correct * 10 >= result.schema_matchings.len() * 9,
        "matching accuracy below 90%: {correct}/{}",
        result.schema_matchings.len()
    );
}

#[test]
fn domains_are_deterministic_and_distinct() {
    let a = Generator::new(pubs::publications(100, 20, 5)).generate();
    let b = Generator::new(pubs::publications(100, 20, 5)).generate();
    assert_eq!(a.records, b.records);
    let movies = Generator::new(hera_datagen::presets::dm1()).generate();
    // Different catalogs: attribute display names don't overlap by
    // accident on core fields like venue vs studio.
    let pub_names: Vec<String> = a
        .registry
        .schemas()
        .flat_map(|s| s.attrs.iter().map(|x| x.name.clone()))
        .collect();
    assert!(pub_names.iter().any(|n| n.contains("author")
        || n == "venue"
        || n == "conference"
        || n == "booktitle"
        || n == "published_in"
        || n == "creator"
        || n == "lead_author"
        || n == "first_author"));
    assert_eq!(movies.truth.distinct_attr_count(), 16);
}
