//! API-compatibility coverage: the `#[deprecated]` constructor shims
//! must stay behaviorally identical to their builder replacements for
//! the whole deprecation window, and `run_with_pairs` must reject every
//! malformed pair shape with the documented typed error — never a panic
//! and never a silently wrong result.

use hera::{
    motivating_example, Hera, HeraConfig, HeraError, HeraSession, Label, Recorder, SchemaId,
    TypeDispatch,
};
use std::sync::Arc;

fn pair(a: u32, b: u32) -> hera::join::ValuePair {
    hera::join::ValuePair {
        a: Label::new(a, 0, 0),
        b: Label::new(b, 0, 0),
        sim: 1.0,
    }
}

/// Streams the motivating example through a session and returns its
/// final labels — the observable a shim must reproduce exactly.
fn session_labels(mut session: HeraSession) -> Vec<u32> {
    let ds = motivating_example();
    let schemas: Vec<SchemaId> = ds
        .registry
        .schemas()
        .map(|s| {
            session.add_schema(
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect();
    for rec in ds.iter() {
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .unwrap();
        session.resolve();
    }
    (0..ds.len() as u32)
        .map(|rid| session.entity_of(hera::RecordId::new(rid)))
        .collect()
}

#[test]
#[allow(deprecated)]
fn hera_new_matches_builder() {
    let ds = motivating_example();
    let cfg = HeraConfig::paper_example();
    let old = Hera::new(cfg.clone()).run(&ds).unwrap();
    let new = Hera::builder(cfg).build().run(&ds).unwrap();
    assert_eq!(old.entity_of, new.entity_of);
    assert_eq!(old.stats.merges, new.stats.merges);
    assert_eq!(old.stats.iterations, new.stats.iterations);
}

#[test]
#[allow(deprecated)]
fn hera_with_metric_matches_builder_metric() {
    let ds = motivating_example();
    let cfg = HeraConfig::paper_example();
    let metric = Arc::new(TypeDispatch::paper_default());
    let old = Hera::with_metric(cfg.clone(), metric.clone())
        .run(&ds)
        .unwrap();
    let new = Hera::builder(cfg).metric(metric).build().run(&ds).unwrap();
    assert_eq!(old.entity_of, new.entity_of);
}

#[test]
#[allow(deprecated)]
fn hera_with_recorder_matches_builder_recorder() {
    let ds = motivating_example();
    let cfg = HeraConfig::paper_example();
    let (rec_old, buf_old) = Recorder::to_memory();
    let (rec_new, buf_new) = Recorder::to_memory();
    let old = Hera::new(cfg.clone())
        .with_recorder(rec_old.deterministic())
        .run(&ds)
        .unwrap();
    let new = Hera::builder(cfg)
        .recorder(rec_new.deterministic())
        .build()
        .run(&ds)
        .unwrap();
    assert_eq!(old.entity_of, new.entity_of);
    // Both paths journal identically (deterministic mode strips clocks).
    assert_eq!(
        hera::obs::deterministic_view(&buf_old.contents()),
        hera::obs::deterministic_view(&buf_new.contents())
    );
}

#[test]
#[allow(deprecated)]
fn session_shims_match_builder() {
    let cfg = HeraConfig::paper_example();
    let via_new = session_labels(HeraSession::new(cfg.clone()));
    let via_builder = session_labels(HeraSession::builder(cfg.clone()).build());
    assert_eq!(via_new, via_builder);

    let metric = Arc::new(TypeDispatch::paper_default());
    let via_with_metric = session_labels(HeraSession::with_metric(cfg.clone(), metric.clone()));
    let via_builder_metric =
        session_labels(HeraSession::builder(cfg.clone()).metric(metric).build());
    assert_eq!(via_with_metric, via_builder_metric);
    assert_eq!(via_new, via_with_metric);

    let via_with_recorder =
        session_labels(HeraSession::new(cfg).with_recorder(Recorder::disabled()));
    assert_eq!(via_with_recorder, via_new);
}

#[test]
fn run_with_pairs_accepts_empty_pairs() {
    let ds = motivating_example();
    let hera = Hera::builder(HeraConfig::paper_example()).build();
    let result = hera.run_with_pairs(&ds, Vec::new()).unwrap();
    // No evidence, no merges: every record is its own entity.
    assert_eq!(result.entity_count(), ds.len());
}

#[test]
fn run_with_pairs_unknown_id_matrix() {
    let ds = motivating_example();
    let n = ds.len() as u32;
    let hera = Hera::builder(HeraConfig::paper_example()).build();
    // First out-of-range rid (a or b), exactly at the boundary and past it.
    for bad in [pair(0, n), pair(0, n + 7), pair(n, n + 1)] {
        let err = hera.run_with_pairs(&ds, vec![bad]).unwrap_err();
        assert!(
            matches!(err, HeraError::UnknownId(_)),
            "expected UnknownId, got {err}"
        );
    }
    // The check runs before normalization: a pair that is both
    // out-of-range and unnormalized reports UnknownId.
    let err = hera.run_with_pairs(&ds, vec![pair(n + 1, 0)]).unwrap_err();
    assert!(matches!(err, HeraError::UnknownId(_)), "got {err}");
}

#[test]
fn run_with_pairs_invalid_config_matrix() {
    let ds = motivating_example();
    let hera = Hera::builder(HeraConfig::paper_example()).build();
    // Self-pairs and reversed pairs are both "not rid-normalized".
    for bad in [pair(0, 0), pair(2, 2), pair(3, 1), pair(1, 0)] {
        let err = hera.run_with_pairs(&ds, vec![bad]).unwrap_err();
        assert!(
            matches!(err, HeraError::InvalidConfig(_)),
            "expected InvalidConfig, got {err}"
        );
    }
    // One bad pair poisons the batch even when valid pairs surround it.
    let err = hera
        .run_with_pairs(&ds, vec![pair(0, 1), pair(2, 2), pair(1, 3)])
        .unwrap_err();
    assert!(matches!(err, HeraError::InvalidConfig(_)), "got {err}");
}

#[test]
fn run_with_pairs_roundtrips_its_own_join() {
    let ds = motivating_example();
    let hera = Hera::builder(HeraConfig::paper_example()).build();
    let pairs = hera.join(&ds);
    let split = hera.run_with_pairs(&ds, pairs).unwrap();
    let whole = hera.run(&ds).unwrap();
    assert_eq!(split.entity_of, whole.entity_of);
}
