//! API-contract coverage for the batch driver's pair-injection entry
//! point: `run_with_pairs` must reject every malformed pair shape with
//! the documented typed error — never a panic and never a silently
//! wrong result. (The `#[deprecated]` pre-builder constructor shims
//! this file used to pin were removed once the builder migration
//! finished; `Hera::builder` / `HeraSession::builder` are the only
//! construction paths now.)

use hera::{motivating_example, Hera, HeraConfig, HeraError, Label};

fn pair(a: u32, b: u32) -> hera::join::ValuePair {
    hera::join::ValuePair {
        a: Label::new(a, 0, 0),
        b: Label::new(b, 0, 0),
        sim: 1.0,
    }
}

#[test]
fn run_with_pairs_accepts_empty_pairs() {
    let ds = motivating_example();
    let hera = Hera::builder(HeraConfig::paper_example()).build();
    let result = hera.run_with_pairs(&ds, Vec::new()).unwrap();
    // No evidence, no merges: every record is its own entity.
    assert_eq!(result.entity_count(), ds.len());
}

#[test]
fn run_with_pairs_unknown_id_matrix() {
    let ds = motivating_example();
    let n = ds.len() as u32;
    let hera = Hera::builder(HeraConfig::paper_example()).build();
    // First out-of-range rid (a or b), exactly at the boundary and past it.
    for bad in [pair(0, n), pair(0, n + 7), pair(n, n + 1)] {
        let err = hera.run_with_pairs(&ds, vec![bad]).unwrap_err();
        assert!(
            matches!(err, HeraError::UnknownId(_)),
            "expected UnknownId, got {err}"
        );
    }
    // The check runs before normalization: a pair that is both
    // out-of-range and unnormalized reports UnknownId.
    let err = hera.run_with_pairs(&ds, vec![pair(n + 1, 0)]).unwrap_err();
    assert!(matches!(err, HeraError::UnknownId(_)), "got {err}");
}

#[test]
fn run_with_pairs_invalid_config_matrix() {
    let ds = motivating_example();
    let hera = Hera::builder(HeraConfig::paper_example()).build();
    // Self-pairs and reversed pairs are both "not rid-normalized".
    for bad in [pair(0, 0), pair(2, 2), pair(3, 1), pair(1, 0)] {
        let err = hera.run_with_pairs(&ds, vec![bad]).unwrap_err();
        assert!(
            matches!(err, HeraError::InvalidConfig(_)),
            "expected InvalidConfig, got {err}"
        );
    }
    // One bad pair poisons the batch even when valid pairs surround it.
    let err = hera
        .run_with_pairs(&ds, vec![pair(0, 1), pair(2, 2), pair(1, 3)])
        .unwrap_err();
    assert!(matches!(err, HeraError::InvalidConfig(_)), "got {err}");
}

#[test]
fn run_with_pairs_roundtrips_its_own_join() {
    let ds = motivating_example();
    let hera = Hera::builder(HeraConfig::paper_example()).build();
    let pairs = hera.join(&ds);
    let split = hera.run_with_pairs(&ds, pairs).unwrap();
    let whole = hera.run(&ds).unwrap();
    assert_eq!(split.entity_of, whole.entity_of);
}
