//! Monte-Carlo validation of Theorem 2: the majority-vote error bound
//! `UP_error = exp(−(n/2p)(p−½)²)` must dominate the empirical error
//! probability of majority voting with per-trial accuracy `p`.

use hera::core::vote_error_bound;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Simulates majority voting: `n` trials, each correct with probability
/// `p`, otherwise one of `k_wrong` wrong outcomes uniformly. Ties count
/// as errors (conservative). Returns the empirical error rate.
fn empirical_error(n: u32, p: f64, k_wrong: usize, rounds: usize, seed: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut errors = 0usize;
    for _ in 0..rounds {
        let mut counts = vec![0u32; k_wrong + 1]; // slot 0 = correct
        for _ in 0..n {
            if rng.gen_bool(p) {
                counts[0] += 1;
            } else {
                let w = rng.gen_range(1..=k_wrong);
                counts[w] += 1;
            }
        }
        let best_wrong = counts[1..].iter().copied().max().unwrap_or(0);
        if counts[0] <= best_wrong {
            errors += 1;
        }
    }
    errors as f64 / rounds as f64
}

#[test]
fn bound_dominates_empirical_error_adversarial_binary() {
    // Worst case: all wrong votes concentrate on a single alternative.
    for &p in &[0.6, 0.7, 0.8, 0.9] {
        for &n in &[5u32, 11, 25, 51] {
            let bound = vote_error_bound(n, p);
            let err = empirical_error(n, p, 1, 40_000, 42 + n as u64);
            assert!(
                err <= bound + 0.01,
                "n={n}, p={p}: empirical {err:.4} exceeds bound {bound:.4}"
            );
        }
    }
}

#[test]
fn bound_dominates_with_dispersed_wrong_votes() {
    // Realistic case: wrong predictions scatter over several attributes.
    for &p in &[0.6, 0.8] {
        for &n in &[10u32, 30] {
            let bound = vote_error_bound(n, p);
            let err = empirical_error(n, p, 4, 40_000, 7 + n as u64);
            assert!(
                err <= bound + 0.01,
                "n={n}, p={p}, k=4: empirical {err:.4} exceeds bound {bound:.4}"
            );
        }
    }
}

#[test]
fn paper_worked_example() {
    // §IV-B: p = 0.8, n = 10 → UP_error ≈ 0.57 < ρ = 0.6, decided with
    // confidence 1 − 0.57 = 0.43.
    let bound = vote_error_bound(10, 0.8);
    assert!((bound - 0.5698).abs() < 1e-3);
    // The actual error of 10-trial majority voting at p = 0.8 is far
    // smaller — the bound is loose but valid, exactly as a Chernoff-style
    // bound should be.
    let err = empirical_error(10, 0.8, 1, 40_000, 99);
    assert!(err < bound);
    assert!(err < 0.15, "empirical error {err} unexpectedly large");
}

#[test]
fn bound_is_monotone() {
    // More votes or better priors can only tighten the bound.
    for w in [5u32, 10, 20, 40].windows(2) {
        assert!(vote_error_bound(w[1], 0.8) < vote_error_bound(w[0], 0.8));
    }
    for w in [0.6, 0.7, 0.8, 0.9].windows(2) {
        assert!(vote_error_bound(20, w[1]) < vote_error_bound(20, w[0]));
    }
}
