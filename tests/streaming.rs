//! Streaming-ER integration tests: [`hera::core::HeraSession`] against
//! the batch driver, on generated heterogeneous data.

use hera::core::HeraSession;
use hera::{Hera, HeraConfig, PairMetrics, SchemaId};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};

fn dataset() -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: "stream-test".into(),
        seed: 17,
        n_records: 200,
        n_entities: 30,
        n_attrs: 12,
        n_sources: 3,
        min_source_attrs: 7,
        max_source_attrs: 10,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate()
}

/// Mirrors a dataset's schemas into a session and returns the id map.
fn mirror_schemas(session: &mut HeraSession, ds: &hera::Dataset) -> Vec<SchemaId> {
    ds.registry
        .schemas()
        .map(|s| {
            session.add_schema(
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Bulk-ingest + single resolve reaches batch-grade quality.
#[test]
fn bulk_ingest_quality_matches_batch() {
    let ds = dataset();
    let batch = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&ds)
        .unwrap();
    let batch_f1 = PairMetrics::score(&batch.clusters(), &ds.truth).f1();

    let mut session = HeraSession::builder(HeraConfig::new(0.5, 0.5)).build();
    let schemas = mirror_schemas(&mut session, &ds);
    for rec in ds.iter() {
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .unwrap();
    }
    session.resolve();
    let stream_f1 = PairMetrics::score(&session.clusters(), &ds.truth).f1();
    assert!(
        (stream_f1 - batch_f1).abs() < 0.03,
        "stream F1 {stream_f1:.3} vs batch F1 {batch_f1:.3}"
    );
    assert!(stream_f1 > 0.9, "stream F1 {stream_f1:.3}");
}

/// Per-record resolution (lowest latency mode) stays near batch quality,
/// and every intermediate state is a valid partition.
#[test]
fn per_record_resolution() {
    let ds = dataset();
    let mut session = HeraSession::builder(HeraConfig::new(0.5, 0.5)).build();
    let schemas = mirror_schemas(&mut session, &ds);
    for (step, rec) in ds.iter().enumerate() {
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .unwrap();
        session.resolve();
        if step % 50 == 0 {
            let total: usize = session.clusters().iter().map(|c| c.len()).sum();
            assert_eq!(total, step + 1, "partition broken at step {step}");
        }
    }
    let f1 = PairMetrics::score(&session.clusters(), &ds.truth).f1();
    assert!(f1 > 0.85, "per-record streaming F1 {f1:.3}");
}

/// The session keeps discovering schema matchings as it ages, and they
/// are overwhelmingly correct.
#[test]
fn schema_matchings_accumulate_and_stay_truthful() {
    let ds = dataset();
    let mut session = HeraSession::builder(HeraConfig::new(0.5, 0.5)).build();
    let schemas = mirror_schemas(&mut session, &ds);
    let mut counts = Vec::new();
    for rec in ds.iter() {
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .unwrap();
        session.resolve();
        counts.push(session.schema_matchings().len());
    }
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "decisions are final"
    );
    let decided = session.schema_matchings();
    assert!(!decided.is_empty(), "no matchings decided");
    // Session attr ids mirror the dataset's registration order 1:1, so
    // ground truth applies directly.
    let correct = decided
        .iter()
        .filter(|m| ds.truth.same_attr(m.attr, m.partner))
        .count();
    assert!(
        correct * 10 >= decided.len() * 9,
        "accuracy {correct}/{} below 90%",
        decided.len()
    );
}

/// Late-arriving records join existing entities without disturbing
/// settled ones.
#[test]
fn late_arrivals_attach_to_existing_entities() {
    let ds = dataset();
    let mut session = HeraSession::builder(HeraConfig::new(0.5, 0.5)).build();
    let schemas = mirror_schemas(&mut session, &ds);
    // Ingest all but the last 20 records, resolve, snapshot.
    let n = ds.len();
    for rec in ds.iter().take(n - 20) {
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .unwrap();
    }
    session.resolve();
    let before = session.clusters().len();
    // Stragglers arrive.
    for rec in ds.iter().skip(n - 20) {
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .unwrap();
    }
    session.resolve();
    let after = session.clusters().len();
    // Most stragglers should have joined existing entities rather than
    // forming 20 fresh singletons.
    assert!(
        after < before + 15,
        "stragglers mostly unattached: {before} → {after}"
    );
    let f1 = PairMetrics::score(&session.clusters(), &ds.truth).f1();
    assert!(f1 > 0.9, "final F1 {f1:.3}");
}
