//! Checkpoint/restore property tests: a snapshot taken mid-stream and
//! restored in a fresh session must be a *perfect continuation* — the
//! resumed run's entities, stats, schema matchings, and deterministic
//! journal events are bit-identical to an uninterrupted run, at every
//! thread count and cache setting. Plus rejection tests: corrupt,
//! truncated, and version-skewed snapshot files fail with typed errors
//! instead of poisoning a session. See DESIGN.md ("Persistence").

use hera::{HeraConfig, HeraError, HeraSession, Recorder, RunStats, SchemaId};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};
use proptest::prelude::*;
use std::path::PathBuf;

fn dataset(seed: u64, n_records: usize, n_entities: usize, corruption: u8) -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: format!("store-prop-{seed}"),
        seed,
        n_records,
        n_entities,
        n_attrs: 10,
        n_sources: 3,
        min_source_attrs: 5,
        max_source_attrs: 8,
        corruption: match corruption {
            0 => CorruptionConfig::light(),
            1 => CorruptionConfig::moderate(),
            _ => CorruptionConfig::heavy(),
        },
        domain: Default::default(),
    })
    .generate()
}

/// Mirrors a dataset's schemas into a session and returns the id map.
fn mirror_schemas(session: &mut HeraSession, ds: &hera::Dataset) -> Vec<SchemaId> {
    ds.registry
        .schemas()
        .map(|s| {
            session.add_schema(
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Ingests records `[from, to)` with a resolve after each insert.
fn ingest(session: &mut HeraSession, ds: &hera::Dataset, from: usize, to: usize) {
    let schemas: Vec<SchemaId> = (0..ds.registry.len() as u32).map(SchemaId::new).collect();
    for rec in ds.iter().skip(from).take(to - from) {
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .unwrap();
        session.resolve();
    }
}

/// Stats rendering with the wall-clock fields zeroed — everything that
/// must be bit-identical across an interrupted and an uninterrupted run.
fn deterministic_stats(s: &RunStats) -> String {
    let mut s = s.clone();
    s.index_build_time = Default::default();
    s.resolve_time = Default::default();
    s.verify_time = Default::default();
    s.to_json().to_string_compact()
}

/// The journal's deterministic core with checkpoint bookkeeping spans
/// removed — the interrupted run emits `checkpoint_save`/`checkpoint_load`
/// lines the straight run never sees; everything else must match.
fn core_events(journal: &str) -> String {
    hera::obs::deterministic_view(journal)
        .lines()
        .filter(|l| {
            !l.contains("\"stage\":\"checkpoint_save\"")
                && !l.contains("\"stage\":\"checkpoint_load\"")
        })
        .map(|l| format!("{l}\n"))
        .collect()
}

fn snap_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hera-store-test-{}-{tag}.hera", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random datasets, checkpoint points, thread counts, and cache
    /// settings: streaming resolution interrupted by a checkpoint and
    /// resumed from disk in a fresh session is indistinguishable from a
    /// run that was never interrupted — same entity for every record,
    /// same merge count, same deterministic stats and schema matchings,
    /// and the same core journal events.
    #[test]
    fn restored_continuation_is_bit_identical(
        seed in 0u64..10_000,
        n_records in 30usize..60,
        n_entities in 6usize..14,
        corruption in 0u8..3,
        cut_ppm in 0u32..1_000_000,
        threads in 1usize..9,
        cache in any::<bool>(),
    ) {
        let ds = dataset(seed, n_records, n_entities, corruption);
        let n = ds.len();
        let cut = 1 + (cut_ppm as usize * (n - 2)) / 1_000_000;
        let mut config = HeraConfig::new(0.5, 0.5).with_threads(threads);
        if !cache {
            config = config.without_sim_cache();
        }
        let path = snap_path(&format!("prop-{seed}"));

        // Uninterrupted reference run.
        let (rec_a, buf_a) = Recorder::to_memory();
        let mut straight = HeraSession::builder(config.clone()).recorder(rec_a).build();
        mirror_schemas(&mut straight, &ds);
        ingest(&mut straight, &ds, 0, n);

        // Interrupted run: ingest [0, cut), checkpoint, drop the session,
        // restore from disk, continue with [cut, n).
        let (rec_b1, buf_b1) = Recorder::to_memory();
        let mut first = HeraSession::builder(config.clone()).recorder(rec_b1).build();
        mirror_schemas(&mut first, &ds);
        ingest(&mut first, &ds, 0, cut);
        first.checkpoint(&path).unwrap();
        drop(first);

        let (rec_b2, buf_b2) = Recorder::to_memory();
        let mut resumed = HeraSession::builder(config.clone())
            .recorder(rec_b2)
            .restore(&path)
            .unwrap();
        prop_assert_eq!(resumed.len(), cut);
        ingest(&mut resumed, &ds, cut, n);

        for rid in 0..n as u32 {
            prop_assert_eq!(
                straight.entity_of(hera::RecordId::new(rid)),
                resumed.entity_of(hera::RecordId::new(rid)),
                "record {} diverged (cut {}, threads {}, cache {})",
                rid, cut, threads, cache
            );
        }
        prop_assert_eq!(straight.clusters(), resumed.clusters());
        prop_assert_eq!(straight.merge_count(), resumed.merge_count());
        prop_assert_eq!(
            deterministic_stats(straight.stats()),
            deterministic_stats(resumed.stats())
        );
        let (ma, mb) = (straight.schema_matchings(), resumed.schema_matchings());
        prop_assert_eq!(ma.len(), mb.len());
        for (a, b) in ma.iter().zip(&mb) {
            prop_assert_eq!(a.attr, b.attr);
            prop_assert_eq!(a.partner, b.partner);
            prop_assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
        let replayed = format!(
            "{}{}",
            core_events(&buf_b1.contents()),
            core_events(&buf_b2.contents())
        );
        prop_assert_eq!(core_events(&buf_a.contents()), replayed);

        std::fs::remove_file(&path).ok();
    }
}

/// Builds a real mid-stream snapshot file to corrupt.
fn real_snapshot(tag: &str) -> PathBuf {
    let ds = dataset(4242, 40, 8, 1);
    let mut session = HeraSession::builder(HeraConfig::new(0.5, 0.5)).build();
    mirror_schemas(&mut session, &ds);
    ingest(&mut session, &ds, 0, 20);
    let path = snap_path(tag);
    session.checkpoint(&path).unwrap();
    path
}

fn restore(path: &PathBuf) -> Result<HeraSession, HeraError> {
    HeraSession::builder(HeraConfig::new(0.5, 0.5)).restore(path)
}

#[test]
fn flipped_payload_byte_is_rejected_as_corrupt() {
    let path = real_snapshot("flip");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    match restore(&path) {
        Err(HeraError::Corrupt(msg)) => assert!(
            msg.contains("crc32") || msg.contains("parse") || msg.contains("expects"),
            "unexpected corrupt message: {msg}"
        ),
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("flipped byte accepted"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_snapshot_is_rejected_as_corrupt() {
    let path = real_snapshot("trunc");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    match restore(&path) {
        Err(HeraError::Corrupt(msg)) => {
            assert!(msg.contains("truncated"), "unexpected message: {msg}")
        }
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("truncated snapshot accepted"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn version_skewed_snapshot_is_rejected_as_version_mismatch() {
    let path = real_snapshot("skew");
    let text = std::fs::read(&path).unwrap();
    let text = String::from_utf8(text).unwrap();
    let skewed = text.replacen("#hera-snapshot v1 ", "#hera-snapshot v9 ", 1);
    assert_ne!(text, skewed, "header rewrite failed");
    std::fs::write(&path, skewed).unwrap();
    match restore(&path) {
        Err(HeraError::VersionMismatch { found, expected }) => {
            assert_eq!(found, 9);
            assert_eq!(expected, 1);
        }
        Err(other) => panic!("expected VersionMismatch, got {other}"),
        Ok(_) => panic!("version-skewed snapshot accepted"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_snapshot_is_an_io_error() {
    let path = snap_path("definitely-not-there");
    std::fs::remove_file(&path).ok();
    match restore(&path) {
        Err(HeraError::Io(msg)) => assert!(msg.contains("read"), "unexpected message: {msg}"),
        Err(other) => panic!("expected Io, got {other}"),
        Ok(_) => panic!("missing snapshot restored"),
    }
}

/// A snapshot written with the cache on restores into a cache-off config
/// (and vice versa) — the cache is an optimisation, not state the result
/// depends on; only ξ must match.
#[test]
fn cache_setting_may_differ_between_checkpoint_and_restore() {
    let ds = dataset(7, 40, 8, 1);
    let mut on = HeraSession::builder(HeraConfig::new(0.5, 0.5)).build();
    mirror_schemas(&mut on, &ds);
    ingest(&mut on, &ds, 0, 20);
    let path = snap_path("cache-skew");
    on.checkpoint(&path).unwrap();

    let mut resumed = HeraSession::builder(HeraConfig::new(0.5, 0.5).without_sim_cache())
        .restore(&path)
        .unwrap();
    ingest(&mut on, &ds, 20, ds.len());
    ingest(&mut resumed, &ds, 20, ds.len());
    assert_eq!(on.clusters(), resumed.clusters());
    assert_eq!(on.merge_count(), resumed.merge_count());
    std::fs::remove_file(&path).ok();
}

/// Restoring under a different ξ is refused — the live-value universe
/// was filtered by the snapshot's ξ, so continuing under another
/// threshold would silently diverge from a from-scratch run.
#[test]
fn xi_skew_is_refused_as_invalid_config() {
    let path = real_snapshot("xi-skew");
    match HeraSession::builder(HeraConfig::new(0.5, 0.9)).restore(&path) {
        Err(HeraError::InvalidConfig(msg)) => {
            assert!(msg.contains('ξ') || msg.contains("xi"), "message: {msg}")
        }
        Err(other) => panic!("expected InvalidConfig, got {other}"),
        Ok(_) => panic!("ξ-skewed restore accepted"),
    }
    std::fs::remove_file(&path).ok();
}
