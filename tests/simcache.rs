//! Property tests for the merge-aware similarity memo cache: caching is a
//! pure optimisation, so cached and uncached runs must be *bit-identical*
//! across random datasets and random merge sequences. See DESIGN.md
//! ("Similarity memoization") for why this holds by construction — the
//! cache stores exact metric outputs, is read-only during the parallel
//! snapshot phase, and is invalidated through the same label remap the
//! value-pair index uses on merge.

use hera::{Hera, HeraConfig, HeraSession};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};
use proptest::prelude::*;

fn dataset(seed: u64, n_records: usize, n_entities: usize, corruption: u8) -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: format!("simcache-prop-{seed}"),
        seed,
        n_records,
        n_entities,
        n_attrs: 10,
        n_sources: 3,
        min_source_attrs: 5,
        max_source_attrs: 8,
        corruption: match corruption {
            0 => CorruptionConfig::light(),
            1 => CorruptionConfig::moderate(),
            _ => CorruptionConfig::heavy(),
        },
        domain: Default::default(),
    })
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch runs: for random datasets (seed, size, noise level), the
    /// cached and uncached pipelines agree on every entity assignment and
    /// every decided schema matching, bit for bit.
    #[test]
    fn cached_equals_uncached_on_random_datasets(
        seed in 0u64..10_000,
        n_records in 40usize..90,
        n_entities in 8usize..18,
        corruption in 0u8..3,
    ) {
        let ds = dataset(seed, n_records, n_entities, corruption);
        let on = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(1)).build().run(&ds).unwrap();
        let off = Hera::builder(
            HeraConfig::new(0.5, 0.5).with_threads(1).without_sim_cache(),
        ).build()
        .run(&ds).unwrap();
        prop_assert_eq!(&on.entity_of, &off.entity_of);
        prop_assert_eq!(on.stats.merges, off.stats.merges);
        prop_assert_eq!(on.stats.iterations, off.stats.iterations);
        prop_assert_eq!(on.schema_matchings.len(), off.schema_matchings.len());
        for (a, b) in on.schema_matchings.iter().zip(&off.schema_matchings) {
            prop_assert_eq!(a.attr, b.attr);
            prop_assert_eq!(a.partner, b.partner);
            prop_assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
        // The uncached run must report zero cache traffic; the cached run
        // must never call the metric more often than the uncached one.
        prop_assert_eq!(off.stats.sim_cache_hits + off.stats.sim_cache_misses, 0);
        prop_assert_eq!(off.stats.sim_cache_size, 0);
        prop_assert!(on.stats.metric_sim_calls <= off.stats.metric_sim_calls);
    }

    /// Incremental runs: streaming the same records in random batch sizes
    /// produces a different merge sequence each time (merges interleave
    /// with arrivals), and the cache — invalidated merge by merge — must
    /// stay transparent through all of them.
    #[test]
    fn cached_equals_uncached_over_random_merge_sequences(
        seed in 0u64..10_000,
        batch_sizes in proptest::collection::vec(1usize..8, 4..12),
    ) {
        let ds = dataset(seed, 60, 12, 1);
        let stream = |cfg: HeraConfig| {
            let mut session = HeraSession::builder(cfg).build();
            let schemas: Vec<_> = ds
                .registry
                .schemas()
                .map(|s| {
                    session.add_schema(
                        s.name.clone(),
                        s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                    )
                })
                .collect();
            let mut pending = 0usize;
            let mut batches = batch_sizes.iter().cycle();
            for rec in ds.iter() {
                session
                    .add_record(schemas[rec.schema.index()], rec.values.clone())
                    .unwrap();
                pending += 1;
                if pending >= *batches.next().unwrap() {
                    session.resolve();
                    pending = 0;
                }
            }
            session.resolve();
            session
        };
        let mut on = stream(HeraConfig::new(0.5, 0.5));
        let mut off = stream(HeraConfig::new(0.5, 0.5).without_sim_cache());
        prop_assert_eq!(on.clusters(), off.clusters());
        prop_assert_eq!(on.merge_count(), off.merge_count());
        prop_assert_eq!(off.sim_cache_size(), 0);
    }
}
