//! Blocking-stage integration tests: the blocked join must be a strict
//! restriction of the all-pairs join (bit-equal similarities, never a
//! new pair), blocking must be deterministic across thread counts, the
//! `BlockingScheme::None` default must leave the pipeline bit-identical,
//! and each scheme must clear a measured recall floor on a seeded
//! dataset (so a silent recall regression fails CI, not just the full
//! `exp_blocking` sweep).

use hera::join::{CandidateSource, JoinConfig, SimilarityJoin};
use hera::sim::TypeDispatch;
use hera::types::RecordId;
use hera::{Blocker, BlockingScheme, Hera, HeraConfig};
use hera_datagen::{scale_preset, CorruptionConfig, DatagenConfig, Generator, ScaleGenerator};
use std::collections::HashMap;

const XI: f64 = 0.5;

fn dataset(seed: u64, n_records: usize) -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: format!("blocking-test-{seed}"),
        seed,
        n_records,
        n_entities: (n_records / 6).max(2),
        n_attrs: 12,
        n_sources: 4,
        min_source_attrs: 6,
        max_source_attrs: 10,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate()
}

fn schemes() -> [BlockingScheme; 3] {
    [
        BlockingScheme::token(),
        BlockingScheme::qgram(),
        BlockingScheme::lsh(),
    ]
}

// Every scheme's blocked join emits a subset of the all-pairs join's
// value pairs, with bit-equal similarities — blocking may only remove
// work, never invent or rescore it.
proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
    #[test]
    fn blocked_join_is_a_restriction_of_all_pairs(seed in 0u64..10_000) {
        let ds = dataset(seed, 240);
        let metric = TypeDispatch::paper_default();
        let join = SimilarityJoin::new(JoinConfig::new(XI), &metric);
        let full: HashMap<_, _> = join
            .join_dataset(&ds)
            .into_iter()
            .map(|p| ((p.a, p.b), p.sim))
            .collect();
        for scheme in schemes() {
            let outcome = Blocker::new(scheme.clone()).block(&ds);
            let blocked =
                join.join_dataset_with(&ds, &CandidateSource::Blocked(outcome.pairs));
            for p in &blocked {
                let sim = full.get(&(p.a, p.b)).unwrap_or_else(|| {
                    panic!(
                        "seed {seed} {}: blocked join invented pair {:?}-{:?}",
                        scheme.name(), p.a, p.b
                    )
                });
                assert_eq!(
                    sim.to_bits(),
                    p.sim.to_bits(),
                    "seed {seed} {}: sim of {:?}-{:?} differs from all-pairs",
                    scheme.name(), p.a, p.b
                );
            }
        }
    }
}

/// Blocking emits the same pair set at every worker-thread count.
#[test]
fn blocking_is_deterministic_across_thread_counts() {
    let ds = dataset(77, 600);
    for scheme in schemes() {
        let base = Blocker::new(scheme.clone()).with_threads(1).block(&ds);
        for threads in [2, 4, 8] {
            let other = Blocker::new(scheme.clone())
                .with_threads(threads)
                .block(&ds);
            assert_eq!(
                base.pairs.as_slice(),
                other.pairs.as_slice(),
                "{} at {threads} threads",
                scheme.name()
            );
            assert_eq!(base.stats, other.stats, "{} stats", scheme.name());
        }
    }
}

/// The full blocked pipeline (block → join → resolve) is bit-identical
/// across thread counts: same entity assignment, same merge count.
#[test]
fn blocked_pipeline_is_deterministic_across_thread_counts() {
    let ds = dataset(78, 400);
    for scheme in schemes() {
        let config = HeraConfig::new(0.5, XI).with_blocking(scheme.clone());
        let base = Hera::builder(config.clone().with_threads(1))
            .build()
            .run(&ds)
            .unwrap();
        for threads in [2, 8] {
            let r = Hera::builder(config.clone().with_threads(threads))
                .build()
                .run(&ds)
                .unwrap();
            assert_eq!(
                base.entity_of,
                r.entity_of,
                "{} at {threads} threads",
                scheme.name()
            );
            assert_eq!(base.stats.merges, r.stats.merges);
            assert_eq!(base.stats.comparisons, r.stats.comparisons);
        }
    }
}

/// `BlockingScheme::None` (the default) routes through the untouched
/// all-pairs path: explicit `None` and an untouched config produce
/// bit-identical results at every thread count.
#[test]
fn none_scheme_keeps_the_pipeline_bit_identical() {
    let ds = dataset(79, 400);
    let default = Hera::builder(HeraConfig::new(0.5, XI).with_threads(1))
        .build()
        .run(&ds)
        .unwrap();
    assert_eq!(HeraConfig::new(0.5, XI).blocking, BlockingScheme::None);
    for threads in [1, 2, 8] {
        let explicit = Hera::builder(
            HeraConfig::new(0.5, XI)
                .with_blocking(BlockingScheme::None)
                .with_threads(threads),
        )
        .build()
        .run(&ds)
        .unwrap();
        assert_eq!(default.entity_of, explicit.entity_of, "{threads} threads");
        assert_eq!(default.stats.merges, explicit.stats.merges);
        assert_eq!(default.stats.comparisons, explicit.stats.comparisons);
    }
}

/// Measured recall floors per scheme on a seeded scale dataset. The
/// floors are deliberately a few points under the measured
/// pair-completeness (token 0.72, qgram 1.00, lsh 0.78 on this seed) so
/// the test catches regressions, not noise; the full PC/RR trade-off
/// lives in `exp_blocking`.
#[test]
fn schemes_clear_their_recall_floor_on_seeded_data() {
    let ds = ScaleGenerator::new(scale_preset(5_000, 51)).generate();
    let truth_pairs = ds.truth.positive_pair_count();
    assert!(truth_pairs > 0, "seeded dataset must contain duplicates");
    let floors = [("token", 0.65), ("qgram", 0.95), ("lsh", 0.70)];
    for scheme in schemes() {
        let outcome = Blocker::new(scheme.clone()).block(&ds);
        let kept = outcome
            .pairs
            .iter()
            .filter(|&(a, b)| ds.truth.same_entity(RecordId::new(a), RecordId::new(b)))
            .count();
        let pc = kept as f64 / truth_pairs as f64;
        let rr = outcome.stats.reduction_ratio();
        eprintln!("{}: pc {pc:.4} rr {rr:.4}", scheme.name());
        let (_, floor) = floors
            .iter()
            .find(|(name, _)| *name == scheme.name())
            .expect("floor per scheme");
        assert!(
            pc >= *floor,
            "{}: pair completeness {pc:.4} fell below floor {floor}",
            scheme.name()
        );
        assert!(
            rr >= 0.8,
            "{}: reduction ratio {rr:.4} — blocking stopped reducing",
            scheme.name()
        );
    }
}
