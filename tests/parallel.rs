//! Determinism of the parallel pipeline: every `num_threads` setting must
//! produce bit-identical results — same joins, same entities, same
//! counters — because parallelism only reschedules read-only snapshot
//! verifications, never reorders decisions.

use hera::{Hera, HeraConfig, Recorder, ValuePairIndex};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};

/// Seeded dataset big enough to exercise the parallel paths (the join
/// parallelizes above ~1k candidate pairs; verification above 32).
fn dataset() -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: "parallel-test".into(),
        seed: 4242,
        n_records: 400,
        n_entities: 60,
        n_attrs: 12,
        n_sources: 4,
        min_source_attrs: 6,
        max_source_attrs: 10,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate()
}

#[test]
fn thread_count_does_not_change_results() {
    let ds = dataset();
    let base = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(1))
        .build()
        .run(&ds)
        .unwrap();
    for threads in [2, 4] {
        let r = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(threads))
            .build()
            .run(&ds)
            .unwrap();
        assert_eq!(base.entity_of, r.entity_of, "{threads} threads");
        assert_eq!(base.stats.merges, r.stats.merges, "{threads} threads");
        assert_eq!(base.stats.comparisons, r.stats.comparisons);
        assert_eq!(base.stats.iterations, r.stats.iterations);
        assert_eq!(base.stats.pruned, r.stats.pruned);
        assert_eq!(
            base.schema_matchings.len(),
            r.schema_matchings.len(),
            "{threads} threads"
        );
    }
}

#[test]
fn auto_threads_match_explicit_single_thread() {
    let ds = dataset();
    let auto = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&ds)
        .unwrap(); // 0 = auto
    let one = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(1))
        .build()
        .run(&ds)
        .unwrap();
    assert_eq!(auto.entity_of, one.entity_of);
    assert_eq!(auto.stats.merges, one.stats.merges);
    assert!(auto.stats.threads >= 1);
}

#[test]
fn parallel_join_is_bit_identical() {
    let ds = dataset();
    let seq = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(1))
        .build()
        .join(&ds);
    for threads in [2, 4, 8] {
        let par = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(threads))
            .build()
            .join(&ds);
        assert_eq!(seq.len(), par.len(), "{threads} threads");
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
            assert_eq!(a.sim.to_bits(), b.sim.to_bits(), "{threads} threads");
        }
    }
}

#[test]
fn thread_count_does_not_change_results_with_cache() {
    // The memo cache is read-only during the parallel snapshot phase and
    // populated in the sequential apply phase, so every thread count must
    // see the same hit/miss history — and produce the same entities.
    let ds = dataset();
    let base = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(1))
        .build()
        .run(&ds)
        .unwrap();
    assert!(
        base.stats.sim_cache_hits > 0,
        "workload must exercise the cache for this test to mean anything"
    );
    for threads in [2, 4, 8] {
        let r = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(threads))
            .build()
            .run(&ds)
            .unwrap();
        assert_eq!(base.entity_of, r.entity_of, "{threads} threads");
        assert_eq!(base.stats.merges, r.stats.merges, "{threads} threads");
        assert_eq!(base.stats.sim_cache_hits, r.stats.sim_cache_hits);
        assert_eq!(base.stats.sim_cache_misses, r.stats.sim_cache_misses);
        assert_eq!(base.stats.sim_cache_size, r.stats.sim_cache_size);
        assert_eq!(
            base.stats.sim_cache_invalidated,
            r.stats.sim_cache_invalidated
        );
        assert_eq!(base.stats.metric_sim_calls, r.stats.metric_sim_calls);
        assert_eq!(
            base.stats.metric_calls_by_round,
            r.stats.metric_calls_by_round
        );
    }
}

#[test]
fn cache_on_and_off_are_bit_identical() {
    // Cached values are exact metric outputs, so disabling the cache may
    // only change speed, never results.
    let ds = dataset();
    for threads in [1, 4] {
        let on = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(threads))
            .build()
            .run(&ds)
            .unwrap();
        let off = Hera::builder(
            HeraConfig::new(0.5, 0.5)
                .with_threads(threads)
                .without_sim_cache(),
        )
        .build()
        .run(&ds)
        .unwrap();
        assert_eq!(on.entity_of, off.entity_of, "{threads} threads");
        assert_eq!(on.stats.merges, off.stats.merges);
        assert_eq!(on.stats.comparisons, off.stats.comparisons);
        assert_eq!(on.stats.iterations, off.stats.iterations);
        assert_eq!(on.schema_matchings.len(), off.schema_matchings.len());
        // The cache must actually save metric work on this multi-round
        // workload.
        assert!(on.stats.metric_sim_calls < off.stats.metric_sim_calls);
        assert_eq!(off.stats.sim_cache_hits, 0);
    }
}

/// Runs the full pipeline with a deterministic (core-events-only) memory
/// journal attached and returns the journal text.
fn core_journal(cfg: HeraConfig, ds: &hera::Dataset) -> (String, hera::RunStats) {
    let (rec, buf) = Recorder::to_memory();
    let result = Hera::builder(cfg)
        .recorder(rec.deterministic())
        .build()
        .run(ds)
        .unwrap();
    (buf.contents(), result.stats)
}

#[test]
fn trace_journal_is_byte_identical_across_threads_and_cache() {
    let ds = dataset();
    let (base, base_stats) = core_journal(HeraConfig::new(0.5, 0.5).with_threads(1), &ds);
    assert!(!base.is_empty());

    // Every line parses; merge lines match the stats counter; the core
    // event kinds all appear on this multi-round workload.
    let summary = hera::obs::validate(&base).unwrap();
    assert_eq!(summary.count("merge"), base_stats.merges);
    assert_eq!(summary.count("run_start"), 1);
    assert_eq!(summary.count("run_end"), 1);
    assert_eq!(summary.count("round_end"), base_stats.iterations);
    assert!(summary.count("span") > 0);
    assert_eq!(summary.count("timing"), 0, "deterministic mode: no timings");
    assert_eq!(summary.count("diag"), 0);

    for threads in [2, 4, 8] {
        let (j, _) = core_journal(HeraConfig::new(0.5, 0.5).with_threads(threads), &ds);
        assert_eq!(base, j, "journal differs at {threads} threads");
    }
    for threads in [1, 4] {
        let (j, _) = core_journal(
            HeraConfig::new(0.5, 0.5)
                .with_threads(threads)
                .without_sim_cache(),
            &ds,
        );
        assert_eq!(
            base, j,
            "journal differs with the cache off at {threads} threads"
        );
    }
}

#[test]
fn full_journal_deterministic_view_matches_core_journal() {
    // A full journal (timings and diagnostics on) stripped through
    // deterministic_view() equals the journal recorded in deterministic
    // mode: diagnostics are *additive*, never interleaved into core data.
    let ds = dataset();
    let (core, _) = core_journal(HeraConfig::new(0.5, 0.5).with_threads(2), &ds);
    let (rec, buf) = Recorder::to_memory();
    let _ = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(2))
        .recorder(rec)
        .build()
        .run(&ds)
        .unwrap();
    let full = buf.contents();
    let full_summary = hera::obs::validate(&full).unwrap();
    assert!(
        full_summary.count("timing") > 0,
        "full mode records timings"
    );
    assert!(full_summary.count("diag") > 0);
    assert_eq!(hera::obs::deterministic_view(&full), core);
}

#[test]
fn parallel_built_index_passes_invariants() {
    let ds = dataset();
    let pairs = Hera::builder(HeraConfig::new(0.5, 0.5).with_threads(4))
        .build()
        .join(&ds);
    let index = ValuePairIndex::build(pairs);
    index.check_invariants().unwrap();
    // And the invariants survive a whole multi-threaded run.
    let cfg = HeraConfig::new(0.5, 0.5)
        .with_threads(4)
        .with_index_validation();
    let r = Hera::builder(cfg).build().run(&ds).unwrap();
    assert!(r.stats.merges > 0);
}
