//! Integration tests reproducing the paper's worked examples end-to-end:
//! the Fig. 1 motivating scenario, Example 2's merge, Example 3's
//! similarity, Example 4's bounds, and the Fig. 8 two-iteration trace.

use hera::{
    motivating_example, BoundMode, Hera, HeraConfig, InstanceVerifier, JoinConfig, Label,
    PairMetrics, SimilarityJoin, SuperRecord, TypeDispatch, ValuePairIndex,
};

/// Fig. 8: with ξ = δ = 0.5, HERA needs two rounds — first the
/// same-source-ish merges, then the super-record merge that resolves the
/// description-difference pair (r1, r2).
#[test]
fn fig8_overall_walkthrough() {
    let ds = motivating_example();
    let result = Hera::builder(HeraConfig::paper_example())
        .build()
        .run(&ds)
        .unwrap();

    // Final entities: {r1, r2, r4, r6} and {r3, r5} (1-based).
    assert_eq!(result.entity_count(), 2);
    let metrics = PairMetrics::score(&result.clusters(), &ds.truth);
    assert_eq!(metrics.f1(), 1.0, "{metrics}");

    // The description-difference pair resolved only via super records:
    // the run must have taken more than one iteration.
    assert!(result.stats.iterations >= 2);
    // Four merges fold six records into two entities.
    assert_eq!(result.stats.merges, 4);
}

/// Example 2 / Fig. 2: merging r1 and r6 produces the super record with
/// deduped name and both Con.Type variants.
#[test]
fn example2_super_record_merge() {
    let ds = motivating_example();
    let mut r1 = SuperRecord::from_record(&ds, ds.record(hera::RecordId::new(0)));
    let r6 = SuperRecord::from_record(&ds, ds.record(hera::RecordId::new(5)));
    r1.absorb(&r6, &[(0, 0), (1, 1), (2, 2), (4, 4)]);
    assert_eq!(r1.size(), 6);
    assert_eq!(r1.fields[4].values.len(), 2); // Electronic + electronics
    assert_eq!(r1.fields[0].values.len(), 1); // John deduped
}

/// Example 3: Sim(R1, R2) for R1 = r1⊕r6, R2 = r2⊕r4 lands near the
/// paper's 0.56 (0.574 under our folded-gram convention; the delta is the
/// paper's own case-sensitivity inconsistency, see hera-sim docs).
#[test]
fn example3_record_similarity() {
    let ds = motivating_example();
    let metric = TypeDispatch::paper_default();
    let mut supers: Vec<SuperRecord> = ds
        .iter()
        .map(|r| SuperRecord::from_record(&ds, r))
        .collect();

    let r6 = supers[5].clone();
    supers[0].absorb(&r6, &[(0, 0), (1, 1), (2, 2), (4, 4)]);
    let r4 = supers[3].clone();
    supers[1].absorb(&r4, &[(0, 0), (1, 3)]);
    let (remap16, remap24) = {
        // Recompute remaps on fresh copies for the index (absorb above
        // already mutated; rebuild cleanly).
        let mut a = SuperRecord::from_record(&ds, ds.record(hera::RecordId::new(0)));
        let b = SuperRecord::from_record(&ds, ds.record(hera::RecordId::new(5)));
        let ra = a.absorb(&b, &[(0, 0), (1, 1), (2, 2), (4, 4)]);
        let mut c = SuperRecord::from_record(&ds, ds.record(hera::RecordId::new(1)));
        let d = SuperRecord::from_record(&ds, ds.record(hera::RecordId::new(3)));
        let rc = c.absorb(&d, &[(0, 0), (1, 3)]);
        (ra, rc)
    };

    let pairs = SimilarityJoin::new(JoinConfig::new(0.35), &metric).join_dataset(&ds);
    let mut index = ValuePairIndex::build(pairs);
    index.merge(0, 5, 0, |l: Label| remap16.apply(l));
    index.merge(1, 3, 1, |l: Label| remap24.apply(l));

    let verifier = InstanceVerifier::new(&metric, 0.35, true);
    let v = verifier.verify(&index, &supers[0], &supers[1], &ds.registry, None);
    assert!((v.sim - 0.574).abs() < 0.01, "Sim(R1,R2) = {}", v.sim);
    assert_eq!(v.matching.len(), 4);
}

/// Example 4: the (r4, r6) pair has no multiple field, so its bounds
/// pinch at (1 + 1 + 0.9) / 5 = 0.58 and the pair is decided directly.
#[test]
fn example4_bounds_pinch() {
    let ds = motivating_example();
    let metric = TypeDispatch::paper_default();
    let pairs = SimilarityJoin::new(JoinConfig::new(0.5), &metric).join_dataset(&ds);
    let index = ValuePairIndex::build(pairs);
    for mode in [BoundMode::Paper, BoundMode::Sound] {
        let b = index.bounds(3, 5, 5, 5, mode);
        assert!(b.is_exact(), "{mode:?}: up {} low {}", b.up, b.low);
        assert!((b.up - 2.9 / 5.0).abs() < 0.02, "{mode:?}: up {}", b.up);
    }
}

/// The schema matchings HERA reports on the motivating example must be
/// consistent with ground-truth attribute identity.
#[test]
fn discovered_matchings_are_truthful() {
    let ds = motivating_example();
    let mut cfg = HeraConfig::paper_example();
    // The toy dataset yields few votes; lower the decision gate so the
    // voter can decide from the handful of merges.
    cfg.vote_min_n = 1;
    cfg.vote_error_threshold = 0.95;
    let result = Hera::builder(cfg).build().run(&ds).unwrap();
    for m in &result.schema_matchings {
        assert!(
            ds.truth.same_attr(m.attr, m.partner),
            "false matching {} ≈ {}",
            ds.registry.attr_qualified_name(m.attr),
            ds.registry.attr_qualified_name(m.partner)
        );
    }
}

/// The paper's false-positive example: r7 and r8 (the exchanged versions
/// of {r2⊕r4} and {r3⊕r5}) look alike under the target schema, but HERA
/// on the heterogeneous data keeps them apart.
#[test]
fn false_positive_pair_kept_apart() {
    let ds = motivating_example();
    let result = Hera::builder(HeraConfig::paper_example())
        .build()
        .run(&ds)
        .unwrap();
    // r2/r4 (0-based 1, 3) vs r3/r5 (0-based 2, 4) stay separate.
    assert!(!result.same_entity(1, 2));
    assert!(!result.same_entity(3, 4));
}
