//! Chaos property test: random heterogeneous datasets × random seeded
//! fault plans, asserting the *no-torn-state* invariant (see
//! `hera::check_no_torn_state` and DESIGN.md, "Fault model"): every run
//! either completes bit-identically to its fault-free reference, or
//! stops with a typed error after which restoring the last good
//! checkpoint fault-free reproduces the reference — never a panic,
//! never a partial snapshot file, never an unparseable journal.
//!
//! Failing cases are persisted under `/tmp/hera-chaos-<seed>/` together
//! with a ready-to-run `hera-cli faults replay` command, so any failure
//! reproduces outside the test harness from just the printed seed.

use hera::{check_no_torn_state, ChaosConfig, FaultPlan, HeraConfig};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};
use proptest::prelude::*;
use std::path::PathBuf;

/// splitmix64: one master seed deterministically fans out into every
/// per-case parameter (dataset shape, plan seed, chaos schedule).
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn dataset(seed: u64, n_records: usize, n_entities: usize, corruption: u8) -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: format!("chaos-{seed}"),
        seed,
        n_records,
        n_entities,
        n_attrs: 10,
        n_sources: 3,
        min_source_attrs: 5,
        max_source_attrs: 8,
        corruption: match corruption {
            0 => CorruptionConfig::light(),
            1 => CorruptionConfig::moderate(),
            _ => CorruptionConfig::heavy(),
        },
        domain: Default::default(),
    })
    .generate()
}

/// The full case a master seed expands to — everything `faults replay`
/// needs to reproduce it.
struct Case {
    ds: hera::Dataset,
    plan: FaultPlan,
    cfg: ChaosConfig,
}

fn expand(master_seed: u64) -> Case {
    let mut s = master_seed;
    let n_records = 10 + (next(&mut s) % 19) as usize; // 10..=28
    let n_entities = 3 + (next(&mut s) % 6) as usize; // 3..=8
    let corruption = (next(&mut s) % 3) as u8;
    let ds = dataset(next(&mut s), n_records, n_entities, corruption);

    let plan = FaultPlan::random(next(&mut s));
    let mut cfg = ChaosConfig::new(HeraConfig::new(0.5, 0.5), 1 + (next(&mut s) % 3) as usize);
    if next(&mut s).is_multiple_of(2) {
        cfg.crash_after = Some((next(&mut s) % n_records as u64) as usize);
    }
    cfg.strict_checkpoints = next(&mut s).is_multiple_of(4);
    // A third of the cases resolve progressively: a small per-record
    // comparison budget leaves deferred frontier work in (almost) every
    // snapshot, so recovery is exercised mid-schedule, not only at
    // fixpoints.
    if next(&mut s).is_multiple_of(3) {
        cfg.resolve_budget = Some(1 + next(&mut s) % 8);
    }
    Case { ds, plan, cfg }
}

/// `expand` with the progressive budget forced on — the PR-8 chaos
/// satellite's dedicated generator (crash/restore of budgeted runs).
fn expand_budgeted(master_seed: u64) -> Case {
    let mut case = expand(master_seed);
    if case.cfg.resolve_budget.is_none() {
        let mut s = master_seed ^ 0xb0d9_e7ed;
        case.cfg.resolve_budget = Some(1 + next(&mut s) % 8);
    }
    // Budgeted runs must still crash somewhere to test mid-budget
    // interruption; force a crash when expand() drew none.
    if case.cfg.crash_after.is_none() {
        let mut s = master_seed ^ 0xc4a5_11fe;
        case.cfg.crash_after = Some((next(&mut s) % case.ds.len() as u64) as usize);
    }
    case
}

/// Persists the failing case's dataset + plan and returns the
/// `faults replay` command that reproduces it.
fn persist_failure(master_seed: u64, case: &Case) -> String {
    let dir = std::env::temp_dir().join(format!("hera-chaos-{master_seed}"));
    let _ = std::fs::create_dir_all(&dir);
    let input = dir.join("dataset.json");
    let plan_path = dir.join("plan.json");
    let _ = std::fs::write(&input, case.ds.to_json().unwrap_or_default());
    let _ = std::fs::write(&plan_path, case.plan.to_json().to_string_pretty());
    let mut cmd = format!(
        "hera-cli faults replay --input {} --plan {} --checkpoint-every {}",
        input.display(),
        plan_path.display(),
        case.cfg.checkpoint_every,
    );
    if let Some(c) = case.cfg.crash_after {
        cmd.push_str(&format!(" --crash-after {c}"));
    }
    if case.cfg.strict_checkpoints {
        cmd.push_str(" --strict-checkpoints");
    }
    if let Some(b) = case.cfg.resolve_budget {
        cmd.push_str(&format!(" --resolve-budget {b}"));
    }
    cmd
}

fn case_dir(master_seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hera-chaos-case-{}-{master_seed}",
        std::process::id()
    ))
}

/// Runs one chaos case end to end; `Err` carries the verdict detail plus
/// the persisted repro command.
fn run_case(master_seed: u64) -> Result<(), String> {
    run_expanded_case(expand(master_seed), master_seed)
}

fn run_expanded_case(case: Case, master_seed: u64) -> Result<(), String> {
    let dir = case_dir(master_seed ^ case.cfg.resolve_budget.unwrap_or(0).wrapping_mul(0x9e37));
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let verdict = check_no_torn_state(&case.ds, &case.cfg, &case.plan, &dir);
    let result = if verdict.ok {
        Ok(())
    } else {
        let repro = persist_failure(master_seed, &case);
        Err(format!(
            "no-torn-state violated (seed {master_seed}): {}\nfired: {:?}\nreproduce with:\n  {repro}",
            verdict.detail, verdict.report.fired,
        ))
    };
    let _ = std::fs::remove_dir_all(&dir);
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The acceptance criterion: 256 random dataset × fault-plan cases,
    /// zero panics, invariant holds in every one.
    #[test]
    fn chaos_no_torn_state(master_seed in any::<u64>()) {
        let outcome = run_case(master_seed);
        prop_assert!(outcome.is_ok(), "{}", outcome.err().unwrap_or_default());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// PR-8 satellite: every case resolves under a per-record comparison
    /// budget AND crashes mid-stream — restoring must land the run
    /// bit-identically on the uninterrupted *budgeted* reference (the
    /// reference inside `check_no_torn_state` shares the budget), so
    /// progressive frontier state round-trips through snapshots.
    #[test]
    fn chaos_budgeted_runs_resume_exactly(master_seed in any::<u64>()) {
        let case = expand_budgeted(master_seed);
        let outcome = run_expanded_case(case, master_seed);
        prop_assert!(outcome.is_ok(), "{}", outcome.err().unwrap_or_default());
    }
}

/// Short randomized smoke for CI: a fresh seed per run, taken from
/// `HERA_CHAOS_SEED` (skipped when unset so `cargo test` stays
/// deterministic). The seed is in every failure message.
#[test]
fn chaos_randomized_smoke() {
    let Ok(seed) = std::env::var("HERA_CHAOS_SEED") else {
        return;
    };
    let base: u64 = seed
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("HERA_CHAOS_SEED must be a u64, got {seed:?}"));
    let mut s = base;
    for i in 0..16 {
        let case_seed = next(&mut s);
        if let Err(msg) = run_case(case_seed) {
            panic!("randomized smoke failed (HERA_CHAOS_SEED={base}, case {i}): {msg}");
        }
    }
}

/// A crash with no checkpoint restarts from scratch and still matches
/// the fault-free reference (pinned, not random: exercises the
/// restart-at-zero recovery arm regardless of what proptest draws).
#[test]
fn crash_before_first_checkpoint_restarts_cleanly() {
    let ds = dataset(7, 12, 4, 0);
    let mut cfg = ChaosConfig::new(HeraConfig::new(0.5, 0.5), 6);
    cfg.crash_after = Some(3);
    let dir = case_dir(u64::MAX);
    std::fs::create_dir_all(&dir).unwrap();
    let verdict = check_no_torn_state(&ds, &cfg, &FaultPlan::none(), &dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(verdict.ok, "{}", verdict.detail);
    assert_eq!(verdict.report.restores, 1);
    assert!(verdict.report.completed());
}

/// A progressive run interrupted mid-budget restores and continues to
/// the same final state as the uninterrupted budgeted run (pinned:
/// exercises budget + crash + checkpoint together regardless of what
/// proptest draws).
#[test]
fn progressive_crash_mid_budget_resumes_exactly() {
    let ds = dataset(19, 20, 5, 1);
    let mut cfg = ChaosConfig::new(HeraConfig::new(0.5, 0.5), 2);
    cfg.resolve_budget = Some(2); // tight: every snapshot carries frontier work
    cfg.crash_after = Some(9);
    let dir = case_dir(u64::MAX - 1);
    std::fs::create_dir_all(&dir).unwrap();
    let verdict = check_no_torn_state(&ds, &cfg, &FaultPlan::none(), &dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(verdict.ok, "{}", verdict.detail);
    assert_eq!(verdict.report.restores, 1);
    assert!(verdict.report.completed());
}

/// The persisted repro command names files that actually round-trip.
#[test]
fn failing_case_artifacts_round_trip() {
    let case = expand(42);
    let repro = persist_failure(42, &case);
    let dir = std::env::temp_dir().join("hera-chaos-42");
    let ds = hera::Dataset::from_json(&std::fs::read_to_string(dir.join("dataset.json")).unwrap())
        .unwrap();
    assert_eq!(ds.len(), case.ds.len());
    let plan_json =
        hera::types::json::parse(&std::fs::read_to_string(dir.join("plan.json")).unwrap()).unwrap();
    let plan = FaultPlan::from_json(&plan_json).unwrap();
    assert_eq!(
        plan.to_json().to_string_compact(),
        case.plan.to_json().to_string_compact()
    );
    assert!(repro.contains("faults replay"));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Service-level chaos: whole-service checkpoints racing live ingest.
//
// The sharded service checkpoints all shard sessions + the stitcher +
// the manifest while shard workers keep ingesting. The invariant is the
// service-shaped no-torn-state rule: a checkpoint that *reports success*
// must restore to a consistent manifest — shard snapshot lengths, the
// routing table, and the stitcher/pending split all agreeing (restore's
// own `Corrupt` checks) — and the restored service must continue to the
// same final partition as the live one. A checkpoint that fails under
// injected faults must fail with a typed error, leave the live service
// serving, and leave no torn manifest behind the last good one.
// ---------------------------------------------------------------------------

mod serve_chaos {
    use super::{dataset, next};
    use hera::serve::ErService;
    use hera::{BackoffPolicy, FaultInjector, FaultPlan, HeraConfig, HeraError, HeraSession};
    use proptest::prelude::*;
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    const DELTA: f64 = 0.5;
    const XI: f64 = 0.5;
    const SHARDS: usize = 2;

    struct ServeCase {
        ds: hera::Dataset,
        plan: FaultPlan,
        stitch_every: usize,
        checkpoints: usize,
    }

    fn expand(master_seed: u64) -> ServeCase {
        let mut s = master_seed;
        let n_records = 24 + (next(&mut s) % 25) as usize; // 24..=48
        let ds = dataset(next(&mut s), n_records, (n_records / 5).max(2), 1);
        ServeCase {
            ds,
            plan: FaultPlan::random(next(&mut s)),
            stitch_every: if next(&mut s).is_multiple_of(2) {
                6 + (next(&mut s) % 10) as usize
            } else {
                0
            },
            checkpoints: 2 + (next(&mut s) % 3) as usize, // 2..=4
        }
    }

    fn case_dir(master_seed: u64) -> PathBuf {
        std::env::temp_dir().join(format!(
            "hera-serve-chaos-{}-{master_seed}",
            std::process::id()
        ))
    }

    /// Registers the dataset's schemas; service ids mirror dataset ids.
    fn mirror_schemas(service: &ErService, ds: &hera::Dataset) -> Vec<hera::SchemaId> {
        ds.registry
            .schemas()
            .map(|s| {
                service.add_schema(
                    &s.name,
                    &s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    /// Sequential single-shard reference partition. The pump ingests in
    /// dataset order on one thread, so the service's auto-boundaries sit
    /// at exact multiples of `stitch_every` — the reference resolves at
    /// those same prefixes (the stitcher's replay schedule), then once
    /// at the end for the final explicit stitch.
    fn reference_partition(ds: &hera::Dataset, stitch_every: usize) -> Vec<Vec<u32>> {
        let mut session = HeraSession::builder(HeraConfig::new(DELTA, XI)).build();
        let schemas: Vec<hera::SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                session.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for (i, rec) in ds.iter().enumerate() {
            session
                .add_record(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
            if stitch_every > 0 && (i + 1).is_multiple_of(stitch_every) {
                session.resolve();
            }
        }
        session.resolve();
        session.clusters()
    }

    /// One case: an ingest thread pumps the whole dataset through the
    /// live service while the main thread fires `checkpoints` snapshot
    /// attempts under the seeded fault plan. Every reported-success
    /// checkpoint must restore; failures must be typed; the live
    /// service must end bit-identical to the sequential reference; and
    /// the last good checkpoint must continue to that same partition.
    fn run_serve_case(master_seed: u64) -> Result<(), String> {
        let case = expand(master_seed);
        let dir = case_dir(master_seed);
        std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let result = run_in_dir(master_seed, &case, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        result
    }

    fn run_in_dir(master_seed: u64, case: &ServeCase, dir: &Path) -> Result<(), String> {
        let build = || {
            ErService::builder(HeraConfig::new(DELTA, XI), SHARDS).stitch_every(case.stitch_every)
        };
        let service = Arc::new(
            build()
                .faults(FaultInjector::new(&case.plan))
                .retry(BackoffPolicy::none())
                .build(),
        );
        let schemas = mirror_schemas(&service, &case.ds);

        // The pump: one thread ingesting the whole dataset in order, so
        // the service's global arrival order IS the dataset order and
        // any checkpoint captures a prefix of it.
        let pump = {
            let service = service.clone();
            let records: Vec<_> = case
                .ds
                .iter()
                .map(|r| (schemas[r.schema.index()], r.values.clone()))
                .collect();
            std::thread::spawn(move || {
                for (schema, values) in records {
                    service.ingest(schema, values).expect("live ingest");
                }
            })
        };

        // Checkpoints racing the pump, each to its own path.
        let mut outcomes: Vec<(PathBuf, Result<(), HeraError>)> = Vec::new();
        for i in 0..case.checkpoints {
            let path = dir.join(format!("race{i}.hera"));
            outcomes.push((path.clone(), service.checkpoint(&path)));
        }
        pump.join().map_err(|_| {
            format!("seed {master_seed}: ingest thread panicked while checkpoints raced it")
        })?;
        service.stitch();

        // The live service, faults and all, must still match the
        // sequential reference — checkpointing is read-only w.r.t. ER
        // state no matter how it fails.
        let want = reference_partition(&case.ds, case.stitch_every);
        if service.stitched_partition() != want {
            return Err(format!(
                "seed {master_seed}: live service diverged from the sequential \
                 reference after {} racing checkpoint(s)",
                case.checkpoints
            ));
        }

        let mut last_good: Option<PathBuf> = None;
        for (path, outcome) in &outcomes {
            match outcome {
                Ok(()) => {
                    // Reported success ⇒ restorable, consistent manifest.
                    // `restore` itself re-checks shard lengths vs the
                    // routing table vs the stitcher/pending split; any
                    // torn shard set fails typed here.
                    let restored = build().restore(path).map_err(|e| {
                        format!(
                            "seed {master_seed}: checkpoint at {} reported success \
                             but failed to restore (torn shard set?): {e}",
                            path.display()
                        )
                    })?;
                    if restored.len() > case.ds.len() {
                        return Err(format!(
                            "seed {master_seed}: restored service claims {} records, \
                             only {} were ever ingested",
                            restored.len(),
                            case.ds.len()
                        ));
                    }
                    last_good = Some(path.clone());
                }
                Err(
                    HeraError::Io(_) | HeraError::CheckpointFailed { .. } | HeraError::Corrupt(_),
                ) => {} // typed failure: the acceptable outcome
                Err(e) => {
                    return Err(format!(
                        "seed {master_seed}: checkpoint failed with a non-IO error: {e}"
                    ));
                }
            }
        }

        // Continuation: the last good checkpoint holds a prefix of the
        // dataset; feeding it the suffix must land on the same final
        // partition as the live service and the reference.
        if let Some(path) = last_good {
            let resumed = build().restore(&path).map_err(|e| {
                format!("seed {master_seed}: re-restore of last good checkpoint: {e}")
            })?;
            let from = resumed.len();
            for rec in case.ds.iter().skip(from) {
                resumed
                    .ingest(schemas[rec.schema.index()], rec.values.clone())
                    .map_err(|e| format!("seed {master_seed}: continuation ingest: {e}"))?;
            }
            resumed.stitch();
            if resumed.stitched_partition() != want {
                return Err(format!(
                    "seed {master_seed}: continuation from the last good checkpoint \
                     (prefix {from}) diverged from the reference partition"
                ));
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Fault-injected whole-service checkpoints racing live ingest:
        /// success ⇒ restorable + continuable, failure ⇒ typed, live
        /// service unharmed either way.
        #[test]
        fn checkpoint_races_live_ingest_without_tearing(master_seed in any::<u64>()) {
            let outcome = run_serve_case(master_seed);
            prop_assert!(outcome.is_ok(), "{}", outcome.err().unwrap_or_default());
        }
    }

    /// Pinned fault-free twin of the property: with no faults at all,
    /// every racing checkpoint must succeed, restore, and continue —
    /// regardless of what proptest draws.
    #[test]
    fn fault_free_checkpoint_races_live_ingest() {
        let mut case = expand(777);
        case.plan = FaultPlan::none();
        case.checkpoints = 3;
        let dir = case_dir(u64::MAX - 7);
        std::fs::create_dir_all(&dir).unwrap();
        let result = run_in_dir(777, &case, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        result.unwrap();
        // And with no faults, all three must actually have succeeded —
        // re-run inline to assert the Ok count, not just consistency.
        let dir = case_dir(u64::MAX - 8);
        std::fs::create_dir_all(&dir).unwrap();
        let service = Arc::new(
            ErService::builder(HeraConfig::new(DELTA, XI), SHARDS)
                .stitch_every(case.stitch_every)
                .build(),
        );
        let schemas = mirror_schemas(&service, &case.ds);
        let pump = {
            let service = service.clone();
            let records: Vec<_> = case
                .ds
                .iter()
                .map(|r| (schemas[r.schema.index()], r.values.clone()))
                .collect();
            std::thread::spawn(move || {
                for (schema, values) in records {
                    service.ingest(schema, values).unwrap();
                }
            })
        };
        for i in 0..3 {
            service.checkpoint(dir.join(format!("ok{i}.hera"))).unwrap();
        }
        pump.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
