//! Cross-crate pipeline tests: generated heterogeneous data → HERA;
//! exchange → baselines; the paper's headline comparison.

use hera::{
    exchange_large, exchange_small, CollectiveEr, CorrelationClustering, Hera, HeraConfig,
    PairMetrics, RSwoosh, Resolver, TypeDispatch,
};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};

/// A small-but-nontrivial dataset for CI-speed pipeline tests.
fn small_dataset() -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: "pipeline-test".into(),
        seed: 99,
        n_records: 300,
        n_entities: 40,
        n_attrs: 14,
        n_sources: 4,
        min_source_attrs: 7,
        max_source_attrs: 11,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate()
}

#[test]
fn hera_quality_on_generated_data() {
    let ds = small_dataset();
    let result = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&ds)
        .unwrap();
    let m = PairMetrics::score(&result.clusters(), &ds.truth);
    assert!(m.precision() > 0.9, "{m}");
    assert!(m.recall() > 0.8, "{m}");
}

#[test]
fn hera_is_deterministic() {
    let ds = small_dataset();
    let a = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&ds)
        .unwrap();
    let b = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&ds)
        .unwrap();
    assert_eq!(a.entity_of, b.entity_of);
    assert_eq!(a.stats.merges, b.stats.merges);
    assert_eq!(a.schema_matchings.len(), b.schema_matchings.len());
}

#[test]
fn result_is_a_partition() {
    let ds = small_dataset();
    let result = Hera::builder(HeraConfig::new(0.4, 0.5))
        .build()
        .run(&ds)
        .unwrap();
    let clusters = result.clusters();
    let mut all: Vec<u32> = clusters.into_iter().flatten().collect();
    all.sort_unstable();
    let expected: Vec<u32> = (0..ds.len() as u32).collect();
    assert_eq!(all, expected);
}

/// The headline claim (Fig. 11's structure): HERA on heterogeneous
/// records beats every baseline running on the information-lossy `-S`
/// exchange of the same data.
#[test]
fn hera_beats_baselines_under_information_loss() {
    let ds = small_dataset();
    let (homo, plan) = exchange_small(&ds, 5);
    assert!(plan.dropped_value_count > 0, "-S exchange must lose data");

    let metric = TypeDispatch::paper_default();
    let hera = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&ds)
        .unwrap();
    let hera_f1 = PairMetrics::score(&hera.clusters(), &ds.truth).f1();

    for baseline in [
        Box::new(RSwoosh::new(0.5, 0.5)) as Box<dyn Resolver>,
        Box::new(CorrelationClustering::new(0.5, 0.5, 7)),
        Box::new(CollectiveEr::new(0.5, 0.5, 0.25)),
    ] {
        let clusters = baseline.resolve(&homo, &metric);
        let f1 = PairMetrics::score(&clusters, &homo.truth).f1();
        assert!(
            hera_f1 > f1,
            "HERA F1 {hera_f1:.3} must beat {} F1 {f1:.3}",
            baseline.name()
        );
    }
}

/// The -L target retains strictly more information than -S (fewer
/// dropped values). Note this does *not* imply better baseline F1: under
/// Definition 5's arity normalization, extra low-coverage target
/// attributes add nulls that dilute record similarity — a measured
/// property, not a bug (see EXPERIMENTS.md).
#[test]
fn larger_target_schema_retains_more_information() {
    let ds = small_dataset();
    let metric = TypeDispatch::paper_default();
    let (small, plan_s) = exchange_small(&ds, 5);
    let (large, plan_l) = exchange_large(&ds, 5);
    assert!(plan_l.target_attrs.len() > plan_s.target_attrs.len());
    assert!(
        plan_l.dropped_value_count < plan_s.dropped_value_count,
        "-L must lose fewer values ({} vs {})",
        plan_l.dropped_value_count,
        plan_s.dropped_value_count
    );
    // Both pipelines still produce usable (if degraded) resolutions. The
    // smoke check runs at δ = 0.4: at δ = 0.5 the -L target's extra
    // low-coverage attributes dilute record similarity below the floor
    // (the normalization property described above), which is measured
    // behavior rather than a pipeline defect.
    for homo in [&small, &large] {
        let clusters = RSwoosh::new(0.4, 0.5).resolve(homo, &metric);
        let m = PairMetrics::score(&clusters, &homo.truth);
        assert!(m.f1() > 0.3, "{}: {m}", homo.name);
    }
}

/// The schema matchings decided on generated data must be overwhelmingly
/// correct (the voter's error bound is doing its job).
#[test]
fn schema_matchings_are_accurate() {
    let ds = small_dataset();
    let result = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&ds)
        .unwrap();
    assert!(
        result.schema_matchings.len() >= 10,
        "expected a healthy number of decided matchings, got {}",
        result.schema_matchings.len()
    );
    let correct = result
        .schema_matchings
        .iter()
        .filter(|m| ds.truth.same_attr(m.attr, m.partner))
        .count();
    let accuracy = correct as f64 / result.schema_matchings.len() as f64;
    assert!(
        accuracy >= 0.9,
        "matching accuracy {accuracy:.2} below 0.9 ({correct}/{})",
        result.schema_matchings.len()
    );
}

/// Sweeping δ trades precision against recall monotonically enough that
/// the extremes behave as the paper describes.
#[test]
fn delta_sweep_extremes() {
    let ds = small_dataset();
    let pairs = Hera::builder(HeraConfig::new(0.5, 0.5)).build().join(&ds);
    let strict = Hera::builder(HeraConfig::new(0.95, 0.5))
        .build()
        .run_with_pairs(&ds, pairs.clone())
        .unwrap();
    let loose = Hera::builder(HeraConfig::new(0.2, 0.5))
        .build()
        .run_with_pairs(&ds, pairs)
        .unwrap();
    let m_strict = PairMetrics::score(&strict.clusters(), &ds.truth);
    let m_loose = PairMetrics::score(&loose.clusters(), &ds.truth);
    assert!(m_strict.precision() >= m_loose.precision());
    assert!(m_loose.recall() >= m_strict.recall());
}
