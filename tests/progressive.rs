//! Progressive (budget-scheduled) resolution invariants — the PR-8
//! headline claims, property-tested (see DESIGN.md, "Progressive
//! resolution"):
//!
//! 1. `resolve_progressive(∞)` **is** `resolve()` — same entities, same
//!    merges, same matchings to the confidence bit, byte-identical core
//!    journal — at 1–8 threads, cache on or off.
//! 2. The budget only truncates the schedule, never reorders it: the
//!    merge sequence under budget `b` is a prefix of the sequence under
//!    any `b' > b` (including `∞`), recall vs ground truth never
//!    decreases with budget, and F1 is non-decreasing up to a small
//!    precision-dip slack.
//! 3. Journal rounds stay monotonic across a checkpoint-resume of an
//!    exhausted run, and the resumed continuation is byte-identical to
//!    continuing in the original session.

use hera::{HeraConfig, HeraSession, PairMetrics, Recorder, ResolveBudget, SchemaId};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};
use proptest::prelude::*;

/// splitmix64: one master seed fans out into every per-case parameter.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn dataset(seed: u64, n_records: usize, n_entities: usize, corruption: u8) -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: format!("progressive-{seed}"),
        seed,
        n_records,
        n_entities,
        n_attrs: 10,
        n_sources: 3,
        min_source_attrs: 5,
        max_source_attrs: 8,
        corruption: match corruption {
            0 => CorruptionConfig::light(),
            1 => CorruptionConfig::moderate(),
            _ => CorruptionConfig::heavy(),
        },
        domain: Default::default(),
    })
    .generate()
}

fn random_dataset(master_seed: u64) -> hera::Dataset {
    let mut s = master_seed;
    let n_records = 12 + (next(&mut s) % 24) as usize; // 12..=35
    let n_entities = 3 + (next(&mut s) % 7) as usize; // 3..=9
    let corruption = (next(&mut s) % 3) as u8;
    dataset(next(&mut s), n_records, n_entities, corruption)
}

/// Builds a session with a deterministic memory journal, mirrors the
/// dataset's schemas, and ingests every record (no intermediate
/// resolution — the whole frontier goes to one resolve call).
fn ingest_all(cfg: HeraConfig, ds: &hera::Dataset) -> (HeraSession, hera::JournalBuffer) {
    let (rec, buf) = Recorder::to_memory();
    let mut session = HeraSession::builder(cfg)
        .recorder(rec.deterministic())
        .build();
    let schemas: Vec<SchemaId> = ds
        .registry
        .schemas()
        .map(|s| {
            session.add_schema(
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect();
    for rec in &ds.records {
        session
            .add_record(schemas[rec.schema.index()], rec.values.clone())
            .expect("ingest");
    }
    (session, buf)
}

fn labels_of(session: &HeraSession) -> Vec<u32> {
    (0..session.len() as u32)
        .map(|r| session.entity_of(hera::RecordId::new(r)))
        .collect()
}

/// The journal's `"ev":"merge"` lines, in order — the emitted merge
/// sequence, winner/loser/sim and all.
fn merge_lines(journal: &str) -> Vec<String> {
    journal
        .lines()
        .filter(|l| l.contains("\"ev\":\"merge\""))
        .map(String::from)
        .collect()
}

// ---------------------------------------------------------------------
// 1. Unlimited budget ≡ resolve().
// ---------------------------------------------------------------------

fn check_unlimited_equivalence(master_seed: u64) -> Result<(), String> {
    let ds = random_dataset(master_seed);
    let base_cfg = HeraConfig::new(0.5, 0.5).with_threads(1);
    let (mut base, base_buf) = ingest_all(base_cfg, &ds);
    let base_merges = base.resolve();
    let base_labels = labels_of(&base);
    let base_stats = base.stats().clone();
    let base_matchings = base.schema_matchings();
    let base_journal = base_buf.contents();

    let mut variants: Vec<(String, HeraConfig)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        variants.push((
            format!("{threads}t"),
            HeraConfig::new(0.5, 0.5).with_threads(threads),
        ));
        variants.push((
            format!("{threads}t-nocache"),
            HeraConfig::new(0.5, 0.5)
                .with_threads(threads)
                .without_sim_cache(),
        ));
    }
    for (name, cfg) in variants {
        let (mut s, buf) = ingest_all(cfg, &ds);
        let report = s.resolve_progressive(ResolveBudget::unlimited());
        if report.exhausted || report.frontier != 0 {
            return Err(format!("[{name}] unlimited budget reported exhaustion"));
        }
        if report.merges != base_merges {
            return Err(format!(
                "[{name}] merges {} != resolve()'s {base_merges}",
                report.merges
            ));
        }
        if labels_of(&s) != base_labels {
            return Err(format!("[{name}] entity labels diverged"));
        }
        let stats = s.stats();
        if stats.comparisons != base_stats.comparisons
            || stats.iterations != base_stats.iterations
            || stats.pruned != base_stats.pruned
        {
            return Err(format!("[{name}] stats diverged"));
        }
        let matchings = s.schema_matchings();
        if matchings.len() != base_matchings.len() {
            return Err(format!("[{name}] matching count diverged"));
        }
        for (a, b) in base_matchings.iter().zip(&matchings) {
            if a.attr != b.attr
                || a.partner != b.partner
                || a.confidence.to_bits() != b.confidence.to_bits()
            {
                return Err(format!("[{name}] matchings diverged to the confidence bit"));
            }
        }
        if buf.contents() != base_journal {
            return Err(format!("[{name}] core journal is not byte-identical"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unlimited_budget_is_bit_identical_to_resolve(master_seed in any::<u64>()) {
        let outcome = check_unlimited_equivalence(master_seed);
        prop_assert!(outcome.is_ok(), "seed {master_seed}: {}", outcome.err().unwrap_or_default());
    }
}

// ---------------------------------------------------------------------
// 2. Budget-prefix property + quality monotonicity.
// ---------------------------------------------------------------------

/// Precision can dip when a budget happens to cut between a
/// false-positive merge and the later true merges that would outweigh
/// it, so F1 is only monotone up to a slack; recall — pure pair
/// coverage under a coarsening-only merge sequence — must be exactly
/// monotone.
const F1_SLACK: f64 = 0.05;

fn check_budget_prefix(master_seed: u64) -> Result<(), String> {
    let ds = random_dataset(master_seed);
    let cfg = || HeraConfig::new(0.5, 0.5).with_threads(2);

    let (mut full, full_buf) = ingest_all(cfg(), &ds);
    let full_report = full.resolve_progressive(ResolveBudget::unlimited());
    let full_merges = merge_lines(&full_buf.contents());
    let full_f1 = PairMetrics::score(&full.clusters(), &ds.truth).f1();
    let total = full_report.comparisons_spent.max(1);

    let budgets: Vec<u64> = [0.1f64, 0.25, 0.5, 0.75]
        .iter()
        .map(|f| ((total as f64) * f).ceil() as u64)
        .chain([total])
        .collect();

    let mut prev_merges: Vec<String> = Vec::new();
    let mut prev_recall = -1.0f64;
    let mut prev_f1 = -1.0f64;
    for &b in &budgets {
        let (mut s, buf) = ingest_all(cfg(), &ds);
        let report = s.resolve_progressive(ResolveBudget::comparisons(b));
        if report.comparisons_spent > b {
            return Err(format!(
                "budget {b}: overspent ({} comparisons)",
                report.comparisons_spent
            ));
        }
        let journal = buf.contents();
        let merges = merge_lines(&journal);
        if merges.len() != report.merges {
            return Err(format!(
                "budget {b}: journal has {} merge lines, report says {}",
                merges.len(),
                report.merges
            ));
        }
        // Prefix vs the previous (smaller) budget…
        if merges.len() < prev_merges.len() || merges[..prev_merges.len()] != prev_merges[..] {
            return Err(format!(
                "budget {b}: merge sequence is not an extension of the smaller budget's"
            ));
        }
        // …and vs the unlimited run.
        if merges[..] != full_merges[..merges.len()] {
            return Err(format!(
                "budget {b}: merge sequence is not a prefix of the unlimited run's"
            ));
        }
        let m = PairMetrics::score(&s.clusters(), &ds.truth);
        if m.recall() < prev_recall {
            return Err(format!(
                "budget {b}: recall decreased ({} -> {})",
                prev_recall,
                m.recall()
            ));
        }
        if m.f1() < prev_f1 - F1_SLACK {
            return Err(format!(
                "budget {b}: F1 dropped past slack ({prev_f1} -> {})",
                m.f1()
            ));
        }
        prev_merges = merges;
        prev_recall = m.recall();
        prev_f1 = m.f1();
    }
    // The final (full-budget) point reaches the unlimited run exactly.
    if prev_merges.len() != full_merges.len() {
        return Err(format!(
            "full budget emitted {} merges, unlimited emitted {}",
            prev_merges.len(),
            full_merges.len()
        ));
    }
    if (prev_f1 - full_f1).abs() > f64::EPSILON {
        return Err("full budget F1 != unlimited F1".into());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn budgeted_merges_are_a_prefix_and_quality_is_monotone(master_seed in any::<u64>()) {
        let outcome = check_budget_prefix(master_seed);
        prop_assert!(outcome.is_ok(), "seed {master_seed}: {}", outcome.err().unwrap_or_default());
    }
}

// ---------------------------------------------------------------------
// 3. Checkpoint-resume of an exhausted run (pinned regression).
// ---------------------------------------------------------------------

/// A budgeted run exhausts, checkpoints, restores in a fresh process
/// image, and finishes — bit-identical to never having checkpointed,
/// with the journal round counter carrying on where it stopped rather
/// than rewinding to 1 (the regression `check_rounds_monotonic`
/// guards).
#[test]
fn checkpoint_resume_keeps_rounds_monotonic_and_state_identical() {
    let ds = dataset(31, 40, 8, 1);
    let dir = std::env::temp_dir().join(format!("hera-progressive-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("exhausted.hera");
    // Half the full run's spend is guaranteed to bite: a budgeted run
    // that reached the fixpoint under it would contradict the (shared,
    // deterministic) schedule's total.
    let total = {
        let (mut probe, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
        probe
            .resolve_progressive(ResolveBudget::unlimited())
            .comparisons_spent
    };
    assert!(total >= 4, "workload too small to split");
    let budget = ResolveBudget::comparisons(total / 2);

    // Uninterrupted: exhaust the budget, then continue to the fixpoint
    // in the same session.
    let (mut a, a_buf) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let a_report = a.resolve_progressive(budget);
    assert!(
        a_report.exhausted,
        "budget must bite for this test to mean anything"
    );
    assert!(a_report.frontier > 0);
    let a_mid_rounds = a.stats().iterations;
    a.resolve_progressive(ResolveBudget::unlimited());
    let a_journal = a_buf.contents();

    // Interrupted: same budgeted slice, checkpoint, restore, continue.
    let (mut b, b_buf) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let b_report = b.resolve_progressive(budget);
    assert_eq!(a_report, b_report, "budgeted slice must be deterministic");
    b.checkpoint(&snap).unwrap();
    drop(b);
    let (rec2, resumed_buf) = Recorder::to_memory();
    let mut resumed = HeraSession::builder(HeraConfig::new(0.5, 0.5))
        .recorder(rec2.deterministic())
        .restore(&snap)
        .unwrap();
    assert_eq!(
        resumed.stats().iterations,
        a_mid_rounds,
        "round counter survives restore"
    );
    resumed.resolve_progressive(ResolveBudget::unlimited());

    // Final state matches the uninterrupted run exactly.
    assert_eq!(labels_of(&resumed), labels_of(&a));
    assert_eq!(resumed.stats().iterations, a.stats().iterations);
    assert_eq!(resumed.stats().merges, a.stats().merges);
    assert_eq!(resumed.stats().comparisons, a.stats().comparisons);

    // The pre-checkpoint journal plus the resumed journal is exactly the
    // uninterrupted journal — once the checkpoint_save/checkpoint_load
    // IO spans (the only legitimate trace of the interruption) are
    // dropped: the continuation replays byte-identically and rounds keep
    // counting up across the seam.
    let strip_io = |j: &str| -> String {
        j.lines()
            .filter(|l| !l.contains("\"stage\":\"checkpoint_"))
            .map(|l| format!("{l}\n"))
            .collect()
    };
    let stitched = format!("{}{}", b_buf.contents(), resumed_buf.contents());
    assert_eq!(strip_io(&stitched), a_journal);
    let checked = hera::obs::check_rounds_monotonic(&stitched).unwrap();
    assert!(checked > 0);
    hera::obs::check_rounds_monotonic(&a_journal).unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// 4. A resolved session is a true fixpoint.
// ---------------------------------------------------------------------

/// `resolve()` must leave *no* mergeable pair behind: re-marking the
/// whole universe dirty and resolving again performs zero merges. This
/// guards the decide-then-merge-then-skip class of bug — a below-δ
/// verdict for (a, c) memoized early in a call must be re-examined
/// after (a, b) merges under the same root `a`, or the emergent merge
/// (a∪b ≈ c) is silently missed and the "fixpoint" returned here would
/// still have work in it.
///
/// Schema voting is off: decided matchings can retroactively raise the
/// similarity of pairs that are no longer dirty, and resolve() has
/// never re-dirtied the universe on a schema decision (matchings are
/// forward-looking by design — DESIGN.md, "Schema-based method"), so
/// under voting the re-scan can legitimately find late merges.
fn fixpoint_dataset(master_seed: u64) -> hera::Dataset {
    // Emergent merges need clusters whose pooled evidence crosses δ
    // where the fragments alone do not — a heavy-corruption, larger-n
    // regime than `random_dataset` (which almost never produces them).
    let mut s = master_seed;
    let n_records = 40 + (next(&mut s) % 81) as usize; // 40..=120
    let n_entities = 5 + (next(&mut s) % 8) as usize; // 5..=12
    let corruption = 1 + (next(&mut s) % 2) as u8; // moderate | heavy
    dataset(next(&mut s), n_records, n_entities, corruption)
}

fn check_resolved_is_fixpoint(master_seed: u64) -> Result<(), String> {
    let ds = fixpoint_dataset(master_seed);
    for threads in [1usize, 4] {
        let cfg = HeraConfig::new(0.5, 0.5)
            .with_threads(threads)
            .without_schema_voting();
        let (mut s, _) = ingest_all(cfg, &ds);
        s.resolve();
        let labels = labels_of(&s);
        s.mark_all_dirty();
        let recheck = s.resolve_progressive(ResolveBudget::unlimited());
        if recheck.merges != 0 {
            return Err(format!(
                "[{threads}t] resolve() missed {} emergent merge(s)",
                recheck.merges
            ));
        }
        if recheck.exhausted || recheck.frontier != 0 {
            return Err(format!("[{threads}t] re-scan did not reach the fixpoint"));
        }
        if labels_of(&s) != labels {
            return Err(format!("[{threads}t] re-scan moved entity labels"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn resolved_session_is_a_true_fixpoint(master_seed in any::<u64>()) {
        let outcome = check_resolved_is_fixpoint(master_seed);
        prop_assert!(outcome.is_ok(), "seed {master_seed}: {}", outcome.err().unwrap_or_default());
    }
}

/// Pinned decide-then-merge-then-skip regression. On this seed the
/// per-call memo used to keep a below-δ verdict alive after a merge
/// changed its evidence — the maximal matching defers the sibling pair
/// behind the memoized one, producing exactly the
/// decide-then-merge-then-skip ordering — so resolve() returned with an
/// emergent merge missing. The epoch-stamped memo re-verifies the pair
/// once either root's evidence (or the voter's decided-matching set)
/// changes, and the post-resolve re-scan here must find nothing left.
#[test]
fn emergent_merges_survive_the_decided_memo() {
    let ds = dataset(19, 60, 8, 2);
    let (mut s, _) = ingest_all(HeraConfig::new(0.4, 0.5), &ds);
    s.resolve();
    let labels = labels_of(&s);
    s.mark_all_dirty();
    let recheck = s.resolve_progressive(ResolveBudget::unlimited());
    assert_eq!(
        recheck.merges, 0,
        "resolve() left emergent merges on the table"
    );
    assert_eq!(labels_of(&s), labels);
}

/// An iteration-capped call must report exhaustion — a partial result
/// is never presented as a fixpoint — and repeated capped calls still
/// land on the full run's answer.
#[test]
fn iteration_cap_reports_exhaustion() {
    let ds = dataset(19, 40, 6, 1);
    let (mut full, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let full_merges = full.resolve();

    let mut cfg = HeraConfig::new(0.5, 0.5);
    cfg.max_iterations = 1;
    let (mut s, _) = ingest_all(cfg, &ds);
    let first = s.resolve_progressive(ResolveBudget::unlimited());
    assert!(
        first.exhausted && first.frontier > 0,
        "a one-round cap on this workload must leave frontier work, and \
         the report must say so"
    );
    let mut merges = first.merges;
    for _ in 0..4096 {
        let r = s.resolve_progressive(ResolveBudget::unlimited());
        merges += r.merges;
        if !r.exhausted {
            break;
        }
    }
    assert_eq!(merges, full_merges);
    assert_eq!(labels_of(&s), labels_of(&full));
}

/// A merge budget stops between rounds without spending comparisons,
/// and `--budget-merges`-style limits compose with comparison limits.
#[test]
fn merge_budget_stops_cleanly() {
    let ds = dataset(77, 36, 6, 0);
    let (mut s, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let r = s.resolve_progressive(ResolveBudget::merges(3));
    assert!(r.merges <= 3);
    assert!(r.comparisons_deferred <= r.comparisons_spent);
    assert!(r.comparisons_deferred == 0 || r.exhausted);
    if r.exhausted {
        // Spending the rest of the schedule lands on resolve()'s answer.
        let (mut full, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
        let full_merges = full.resolve();
        let rest = s.resolve_progressive(ResolveBudget::unlimited());
        assert_eq!(r.merges + rest.merges, full_merges);
        assert_eq!(labels_of(&s), labels_of(&full));
    }
    // Zero-merge budget is a no-op that reports the frontier.
    let (mut z, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let rz = z.resolve_progressive(ResolveBudget::merges(0));
    assert_eq!(rz.merges, 0);
    assert_eq!(rz.comparisons_spent, 0);
    assert!(rz.exhausted);
    assert!(rz.frontier > 0, "untouched dirty roots are the frontier");
}

// ---------------------------------------------------------------------
// 5. Streaming resolve (ROADMAP item 3(a)): callback + iterator forms.
// ---------------------------------------------------------------------

/// The callback form sees exactly the journal's merge sequence —
/// winner, loser, confidence, in order — and leaves a report and
/// journal bit-identical to `resolve_progressive` under the same
/// budget.
#[test]
fn resolve_progressive_with_streams_the_merge_sequence() {
    let ds = dataset(23, 40, 7, 1);
    for budget in [
        ResolveBudget::unlimited(),
        ResolveBudget::comparisons(40),
        ResolveBudget::merges(5),
    ] {
        let (mut polled, polled_buf) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
        let polled_report = polled.resolve_progressive(budget);

        let (mut streamed, streamed_buf) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
        let mut events: Vec<hera::MergeEvent> = Vec::new();
        let streamed_report = streamed.resolve_progressive_with(budget, |e| events.push(e));

        assert_eq!(streamed_report, polled_report);
        assert_eq!(streamed_buf.contents(), polled_buf.contents());
        assert_eq!(events.len(), streamed_report.merges);
        let journal_merges = merge_lines(&streamed_buf.contents());
        assert_eq!(events.len(), journal_merges.len());
        for (e, line) in events.iter().zip(&journal_merges) {
            assert!(
                line.contains(&format!("\"winner\":{}", e.winner))
                    && line.contains(&format!("\"loser\":{}", e.loser)),
                "event {e:?} does not match journal line {line}"
            );
            assert!(e.confidence >= 0.5, "merges never land below δ");
            assert!(e.comparisons_spent <= streamed_report.comparisons_spent);
        }
        // comparisons_spent is non-decreasing along the stream — the
        // x-axis of a progressive-recall curve.
        for w in events.windows(2) {
            assert!(w[0].comparisons_spent <= w[1].comparisons_spent);
        }
        assert_eq!(labels_of(&streamed), labels_of(&polled));
    }
}

/// The pull-based iterator yields the same events as the callback form,
/// and abandoning it early leaves the session at a clean budget-cut
/// boundary: resolving the rest lands on the full run's answer.
#[test]
fn resolve_stream_matches_callback_and_survives_early_drop() {
    let ds = dataset(29, 40, 7, 1);

    let (mut by_cb, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let mut cb_events: Vec<hera::MergeEvent> = Vec::new();
    let cb_report = by_cb.resolve_progressive_with(ResolveBudget::unlimited(), |e| {
        cb_events.push(e);
    });

    let (mut by_iter, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let mut stream = by_iter.resolve_stream(ResolveBudget::unlimited());
    let iter_events: Vec<hera::MergeEvent> = stream.by_ref().collect();
    let iter_report = stream.report();
    drop(stream);
    assert_eq!(iter_events, cb_events);
    assert_eq!(iter_report, cb_report);
    assert_eq!(labels_of(&by_iter), labels_of(&by_cb));
    assert!(cb_events.len() >= 2, "workload must actually merge");

    // Early drop: consume only the first event, abandon the stream.
    let (mut partial, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    {
        let mut stream = partial.resolve_stream(ResolveBudget::unlimited());
        let first = stream.next().expect("at least one merge");
        assert_eq!(first, cb_events[0]);
    }
    // The drop sealed the call; the session continues to the same
    // fixpoint from its clean boundary.
    partial.resolve();
    assert_eq!(labels_of(&partial), labels_of(&by_cb));

    // finish() drains and returns the full report.
    let (mut fin, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let fin_report = fin.resolve_stream(ResolveBudget::unlimited()).finish();
    assert_eq!(fin_report, cb_report);
}

// ---------------------------------------------------------------------
// 6. Wall-clock budgets (ROADMAP item 3(b)) — best-effort by contract.
// ---------------------------------------------------------------------

/// A zero wall-clock budget stops at the first round boundary without
/// reaching the fixpoint; a generous one reaches exactly resolve()'s
/// answer. (No assertion relates spent time to the budget — wall-clock
/// cuts are best-effort, not bit-exact; see `ResolveBudget::wall_clock`.)
#[test]
fn wall_clock_budget_cuts_and_completes() {
    use std::time::Duration;
    let ds = dataset(41, 48, 7, 1);
    let (mut full, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let full_merges = full.resolve();
    assert!(full_merges > 0);

    let zero = ResolveBudget::wall_clock(Duration::ZERO);
    assert!(zero.is_bounded());
    let (mut starved, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let r = starved.resolve_progressive(zero);
    assert!(r.exhausted, "zero time must report exhaustion");
    assert_eq!(r.comparisons_spent, 0, "deadline met before any round");
    assert!(r.frontier > 0);
    // The cut is a clean boundary: the rest of the schedule still lands
    // on the full answer.
    let rest = starved.resolve_progressive(ResolveBudget::unlimited());
    assert_eq!(r.merges + rest.merges, full_merges);
    assert_eq!(labels_of(&starved), labels_of(&full));

    let generous = ResolveBudget::unlimited().with_wall_clock(Duration::from_secs(3600));
    let (mut relaxed, _) = ingest_all(HeraConfig::new(0.5, 0.5), &ds);
    let rr = relaxed.resolve_progressive(generous);
    assert!(!rr.exhausted);
    assert_eq!(rr.merges, full_merges);
    assert_eq!(labels_of(&relaxed), labels_of(&full));

    // The cost model exists once comparisons were spent, and is sane.
    assert!(relaxed.per_comparison_cost().is_some());
    assert!(starved.per_comparison_cost().unwrap() > Duration::ZERO);
}
