//! hera-serve integration tests: the line protocol end to end (in
//! process and over TCP), checkpoint → kill → restore continuity, and
//! the sharding equivalence property — sharded ingest plus boundary
//! stitching lands on exactly the partition a single-shard session
//! produces on the same stream, at any shard count and thread count.

use hera::serve::{serve_lines, serve_tcp, ErService, TcpClient};
use hera::types::json::{parse, Json};
use hera::{HeraConfig, HeraSession, ResolveBudget, SchemaId};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};
use std::io::Cursor;

const DELTA: f64 = 0.5;
const XI: f64 = 0.5;

fn dataset(seed: u64, n_records: usize) -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: format!("serve-test-{seed}"),
        seed,
        n_records,
        n_entities: (n_records / 6).max(2),
        n_attrs: 12,
        n_sources: 4,
        min_source_attrs: 6,
        max_source_attrs: 10,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate()
}

/// Registers a dataset's schemas in a service; service ids mirror
/// dataset ids (dense registration order).
fn mirror_schemas(service: &ErService, ds: &hera::Dataset) -> Vec<SchemaId> {
    ds.registry
        .schemas()
        .map(|s| {
            service.add_schema(
                &s.name,
                &s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Runs a request script through an in-process service and returns the
/// parsed response lines.
fn run_script(service: &ErService, script: &str) -> Vec<Json> {
    let mut out = Vec::new();
    let shutdown = serve_lines(service, Cursor::new(script.to_string()), &mut out).unwrap();
    assert!(!shutdown || script.contains("shutdown"));
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| parse(l).unwrap())
        .collect()
}

fn is_ok(reply: &Json) -> bool {
    matches!(reply.get("ok"), Some(Json::Bool(true)))
}

/// The protocol end to end over an in-process byte stream: schema →
/// ingest → resolve → stitch → lookup → entity → stats, plus error
/// responses for bad input, with the connection surviving every error.
#[test]
fn protocol_round_trips_in_process() {
    let service = ErService::builder(HeraConfig::new(DELTA, XI), 2).build();
    let script = r#"{"cmd":"schema","name":"crm","attrs":["name","city"]}
{"cmd":"ingest","schema":0,"values":[{"Str":"alice example"},{"Str":"berlin"}]}
not even json
{"cmd":"lookup","id":99}
{"cmd":"ingest","schema":0,"values":[{"Str":"alice example"},{"Str":"berlin"}]}
{"cmd":"resolve","budget":{}}
{"cmd":"stitch"}
{"cmd":"lookup","id":0}
{"cmd":"stats"}
{"cmd":"shutdown"}
"#;
    // Values ride the wire in hera_types::Value::to_json's tagged shape.
    let probe = hera::Value::from("alice example")
        .to_json()
        .to_string_compact();
    assert_eq!(probe, r#"{"Str":"alice example"}"#, "wire shape drifted");

    let replies = run_script(&service, script);
    assert_eq!(replies.len(), 10);
    assert!(is_ok(&replies[0]), "schema");
    assert_eq!(replies[0].expect("schema").unwrap().as_u32().unwrap(), 0);
    assert!(is_ok(&replies[1]), "first ingest");
    assert!(!is_ok(&replies[2]), "garbage line must error, not kill");
    assert!(!is_ok(&replies[3]), "unknown id must error");
    assert!(is_ok(&replies[4]) && is_ok(&replies[5]) && is_ok(&replies[6]));
    let lookup = &replies[7];
    assert!(is_ok(lookup));
    assert_eq!(
        lookup.expect("provisional").unwrap(),
        &Json::Bool(false),
        "stitched lookup is authoritative"
    );
    let members = lookup.expect("members").unwrap().as_arr().unwrap();
    assert_eq!(members.len(), 2, "identical records must have merged");
    let stats = &replies[8];
    assert_eq!(stats.expect("records").unwrap().as_i64().unwrap(), 2);
    assert_eq!(stats.expect("pending").unwrap().as_i64().unwrap(), 0);
    assert!(is_ok(&replies[9]), "shutdown acks");
}

/// Sharded ingest + boundary stitching reproduces the single-shard
/// partition exactly — same clusters, same entity labels — for every
/// shard count and thread count, with periodic budgeted shard resolves
/// and stitches along the way. (ISSUE satellite 5.)
#[test]
fn sharded_stitching_matches_single_shard_partition() {
    let ds = dataset(91, 180);
    // Single-shard reference: resolve at the same stitch boundaries.
    let stitch_every = 45;
    let mut reference = HeraSession::builder(HeraConfig::new(DELTA, XI)).build();
    let ref_schemas: Vec<SchemaId> = ds
        .registry
        .schemas()
        .map(|s| {
            reference.add_schema(
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect();
    for (i, rec) in ds.iter().enumerate() {
        reference
            .add_record(ref_schemas[rec.schema.index()], rec.values.clone())
            .unwrap();
        if (i + 1) % stitch_every == 0 {
            reference.resolve();
        }
    }
    reference.resolve();
    let want = reference.clusters();

    for shards in [1, 2, 4] {
        for threads in [1, 8] {
            let service =
                ErService::builder(HeraConfig::new(DELTA, XI).with_threads(threads), shards)
                    .stitch_every(stitch_every)
                    .build();
            let schemas = mirror_schemas(&service, &ds);
            for rec in ds.iter() {
                service
                    .ingest(schemas[rec.schema.index()], rec.values.clone())
                    .unwrap();
                // Shard-level resolution between boundaries: provisional
                // work that must never change the stitched answer.
                if service.len() % 10 == 0 {
                    service.resolve(ResolveBudget::comparisons(200));
                }
            }
            service.stitch();
            assert_eq!(
                service.stitched_partition(),
                want,
                "{shards} shard(s), {threads} thread(s)"
            );
            // Every lookup agrees with the reference session bit for bit.
            for rid in 0..ds.len() as u32 {
                let reply = service.lookup(rid).unwrap();
                assert!(!reply.provisional, "all records stitched");
                assert_eq!(
                    reply.entity,
                    reference.entity_of(hera::RecordId::new(rid)),
                    "rid {rid} at {shards} shard(s), {threads} thread(s)"
                );
            }
        }
    }
}

// Property version over random streams: ingest order, shard count, and
// stitch cadence never change the stitched partition.
proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
    #[test]
    fn stitched_partition_is_shard_invariant(
        seed in 0u64..1_000,
        shards in 1usize..=4,
        threads in 1usize..=8,
        stitch_every in 20usize..=60,
    ) {
        let ds = dataset(seed, 120);
        let mut reference = HeraSession::builder(HeraConfig::new(DELTA, XI)).build();
        let ref_schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                reference.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for (i, rec) in ds.iter().enumerate() {
            reference
                .add_record(ref_schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
            if (i + 1) % stitch_every == 0 {
                reference.resolve();
            }
        }
        reference.resolve();

        let service = ErService::builder(
            HeraConfig::new(DELTA, XI).with_threads(threads),
            shards,
        )
        .stitch_every(stitch_every)
        .build();
        let schemas = mirror_schemas(&service, &ds);
        for rec in ds.iter() {
            service
                .ingest(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
        }
        service.resolve(ResolveBudget::merges(5));
        service.stitch();
        proptest::prop_assert_eq!(service.stitched_partition(), reference.clusters());
    }
}

/// Checkpoint → drop → restore: the restored service answers lookups
/// identically, keeps its pending suffix, and continues ingesting +
/// stitching to the same final partition as a never-interrupted twin.
#[test]
fn checkpoint_restore_preserves_answers_and_continuation() {
    let ds = dataset(92, 160);
    let cut = 100;
    let dir = std::env::temp_dir().join(format!("hera-serve-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("service.hera");

    let build = || ErService::builder(HeraConfig::new(DELTA, XI), 3).stitch_every(40);

    // Uninterrupted twin.
    let whole = build().build();
    let schemas = mirror_schemas(&whole, &ds);
    for rec in ds.iter() {
        whole
            .ingest(schemas[rec.schema.index()], rec.values.clone())
            .unwrap();
    }
    whole.stitch();

    // Interrupted twin: ingest a prefix, checkpoint mid-pending, drop.
    let (pre_lookup, pre_pending) = {
        let first = build().build();
        let schemas = mirror_schemas(&first, &ds);
        for rec in ds.iter().take(cut) {
            first
                .ingest(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
        }
        assert!(first.pending_len() > 0, "cut must land mid-pending");
        first.checkpoint(&path).unwrap();
        (first.lookup(0).unwrap(), first.pending_len())
    };

    let resumed = build().restore(&path).unwrap();
    assert_eq!(resumed.len(), cut);
    assert_eq!(resumed.pending_len(), pre_pending);
    assert_eq!(
        resumed.lookup(0).unwrap(),
        pre_lookup,
        "restored answers agree"
    );

    for rec in ds.iter().skip(cut) {
        resumed
            .ingest(schemas[rec.schema.index()], rec.values.clone())
            .unwrap();
    }
    resumed.stitch();
    assert_eq!(
        resumed.stitched_partition(),
        whole.stitched_partition(),
        "continuation matches the uninterrupted run"
    );

    // Shard-count mismatch is a typed config error, not silent rerouting.
    let err = ErService::builder(HeraConfig::new(DELTA, XI), 2)
        .restore(&path)
        .err()
        .expect("wrong shard count must fail");
    assert!(matches!(err, hera::HeraError::InvalidConfig(_)), "{err}");

    for entry in std::fs::read_dir(&dir).unwrap() {
        std::fs::remove_file(entry.unwrap().path()).ok();
    }
    std::fs::remove_dir(&dir).ok();
}

/// The TCP transport end to end with the typed client: two sequential
/// connections share service state, and `shutdown` stops the server.
#[test]
fn tcp_server_and_typed_client() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let service =
            std::sync::Arc::new(ErService::builder(HeraConfig::new(DELTA, XI), 2).build());
        serve_tcp(service, listener).unwrap();
    });

    // Connection 1: register + ingest, then hang up (no shutdown).
    {
        let mut c = TcpClient::connect(addr).unwrap();
        let schema = c
            .schema("crm", &["name".to_string(), "city".to_string()])
            .unwrap();
        assert_eq!(schema.raw(), 0);
        let a = c
            .ingest(
                schema,
                vec![hera::Value::from("bob stone"), hera::Value::from("paris")],
            )
            .unwrap();
        assert_eq!(a.id, 0);
        let ids = c
            .batch(vec![
                (
                    schema,
                    vec![hera::Value::from("bob stone"), hera::Value::from("paris")],
                ),
                (
                    schema,
                    vec![hera::Value::from("someone else"), hera::Value::from("lyon")],
                ),
            ])
            .unwrap();
        assert_eq!(ids, vec![1, 2]);
    }

    // Connection 2: state survived; resolve, stitch, look up, shut down.
    {
        let mut c = TcpClient::connect(addr).unwrap();
        let (_, exhausted) = c.resolve(ResolveBudget::unlimited()).unwrap();
        assert!(!exhausted);
        assert_eq!(c.stitch().unwrap(), 3);
        let hit = c.lookup(0).unwrap();
        assert!(!hit.provisional);
        assert_eq!(hit.members, vec![0, 1], "the two bobs merged");
        assert_eq!(c.entity(hit.entity).unwrap(), hit.members);
        let stats = c.stats().unwrap();
        assert_eq!(stats.expect("records").unwrap().as_i64().unwrap(), 3);
        c.shutdown().unwrap();
    }
    server.join().unwrap();
}
