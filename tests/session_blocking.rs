//! Streaming-session blocking integration tests (ROADMAP item 2, the
//! streaming half): with a blocking scheme configured, `add_record`
//! joins each arriving record only against its co-blocked candidates;
//! with `BlockingScheme::None` the ingest path is bit-identical to the
//! historical unfiltered one. Blocker state checkpoints and restores
//! with the session, and a snapshot refuses to restore under a
//! different scheme.

use hera::core::HeraSession;
use hera::{BlockingScheme, HeraConfig, HeraError, JournalBuffer, PairMetrics, Recorder, SchemaId};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};

const DELTA: f64 = 0.5;
const XI: f64 = 0.5;

fn dataset(seed: u64, n_records: usize) -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: format!("session-blocking-{seed}"),
        seed,
        n_records,
        n_entities: (n_records / 6).max(2),
        n_attrs: 12,
        n_sources: 4,
        min_source_attrs: 6,
        max_source_attrs: 10,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate()
}

fn mirror_schemas(session: &mut HeraSession, ds: &hera::Dataset) -> Vec<SchemaId> {
    ds.registry
        .schemas()
        .map(|s| {
            session.add_schema(
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Ingests the whole dataset, resolving every `batch` records, under a
/// deterministic journal.
fn run_stream(cfg: HeraConfig, ds: &hera::Dataset, batch: usize) -> (HeraSession, JournalBuffer) {
    let (rec, buf) = Recorder::to_memory();
    let mut session = HeraSession::builder(cfg)
        .recorder(rec.deterministic())
        .build();
    let schemas = mirror_schemas(&mut session, ds);
    for (i, r) in ds.iter().enumerate() {
        session
            .add_record(schemas[r.schema.index()], r.values.clone())
            .unwrap();
        if (i + 1) % batch == 0 {
            session.resolve();
        }
    }
    session.resolve();
    (session, buf)
}

fn partition(session: &mut HeraSession) -> Vec<Vec<u32>> {
    session.clusters()
}

/// `--blocking none` is the unfiltered path, bit for bit: same entity
/// partition, same comparison counts, byte-identical core journal as a
/// default-config session — so enabling the blocking plumbing costs the
/// no-blocking configuration nothing, not even a journal diff.
#[test]
fn none_scheme_streaming_is_bit_identical() {
    let ds = dataset(41, 240);
    let (mut base, base_buf) = run_stream(HeraConfig::new(DELTA, XI), &ds, 40);
    let (mut none, none_buf) = run_stream(
        HeraConfig::new(DELTA, XI).with_blocking(BlockingScheme::None),
        &ds,
        40,
    );
    assert_eq!(partition(&mut base), partition(&mut none));
    assert_eq!(base.stats().comparisons, none.stats().comparisons);
    assert_eq!(base.stats().merges, none.stats().merges);
    assert_eq!(
        base_buf.contents(),
        none_buf.contents(),
        "journals must be byte-identical"
    );
}

/// A blocked streaming ingest does strictly less comparison work than
/// the unfiltered one and still lands within a few F1 points of it —
/// the streaming analogue of the batch pair-completeness floor.
#[test]
fn token_blocking_cuts_comparisons_and_holds_quality() {
    let ds = dataset(42, 360);
    let (full, _) = run_stream(HeraConfig::new(DELTA, XI), &ds, 60);
    let full_f1 = {
        let mut s = full;
        PairMetrics::score(&s.clusters(), &ds.truth).f1()
    };
    for scheme in [BlockingScheme::token(), BlockingScheme::qgram()] {
        let name = scheme.name();
        let (mut blocked, _) =
            run_stream(HeraConfig::new(DELTA, XI).with_blocking(scheme), &ds, 60);
        let f1 = PairMetrics::score(&blocked.clusters(), &ds.truth).f1();
        assert!(
            f1 > full_f1 - 0.05,
            "{name}: blocked F1 {f1:.3} vs unfiltered {full_f1:.3}"
        );
        assert!(f1 > 0.85, "{name}: blocked F1 {f1:.3}");
    }
}

/// Blocking must produce identical results at every thread count — the
/// blocker runs on the ingest path, which is single-threaded, but the
/// filtered evidence feeds the multi-threaded resolve.
#[test]
fn blocked_streaming_is_deterministic_across_thread_counts() {
    let ds = dataset(43, 240);
    let cfg = HeraConfig::new(DELTA, XI).with_blocking(BlockingScheme::token());
    let (mut base, base_buf) = run_stream(cfg.clone().with_threads(1), &ds, 48);
    let base_part = partition(&mut base);
    for threads in [2, 8] {
        let (mut other, other_buf) = run_stream(cfg.clone().with_threads(threads), &ds, 48);
        assert_eq!(base_part, partition(&mut other), "{threads} threads");
        assert_eq!(
            base_buf.contents(),
            other_buf.contents(),
            "{threads} threads"
        );
    }
}

/// Checkpoint/restore carries the blocker: a session restored
/// mid-stream ingests the remainder bit-identically to the
/// uninterrupted run (same partition, same comparisons), which can only
/// hold if the restored blocker admits future records against exactly
/// the checkpointed blocks.
#[test]
fn blocker_state_survives_checkpoint_restore() {
    let ds = dataset(44, 240);
    let cfg = HeraConfig::new(DELTA, XI).with_blocking(BlockingScheme::token());
    let cut = 120;

    // Uninterrupted reference.
    let (mut whole, _) = run_stream(cfg.clone(), &ds, 48);

    // Interrupted twin: ingest the prefix, checkpoint, restore, finish.
    let dir = std::env::temp_dir().join(format!("hera-blocker-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("blocked.hera");
    {
        let mut first = HeraSession::builder(cfg.clone()).build();
        let schemas = mirror_schemas(&mut first, &ds);
        for (i, r) in ds.iter().enumerate().take(cut) {
            first
                .add_record(schemas[r.schema.index()], r.values.clone())
                .unwrap();
            if (i + 1) % 48 == 0 {
                first.resolve();
            }
        }
        first.checkpoint(&path).unwrap();
    }
    let mut resumed = HeraSession::builder(cfg.clone()).restore(&path).unwrap();
    let schemas: Vec<SchemaId> = ds
        .registry
        .schemas()
        .enumerate()
        .map(|(i, _)| SchemaId::new(i as u32))
        .collect();
    for (i, r) in ds.iter().enumerate().skip(cut) {
        resumed
            .add_record(schemas[r.schema.index()], r.values.clone())
            .unwrap();
        if (i + 1) % 48 == 0 {
            resumed.resolve();
        }
    }
    resumed.resolve();

    assert_eq!(partition(&mut whole), partition(&mut resumed));
    assert_eq!(whole.stats().comparisons, resumed.stats().comparisons);
    assert_eq!(whole.stats().merges, resumed.stats().merges);
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}

/// The candidate universe depends on the blocking scheme, so a snapshot
/// only restores under the scheme that produced it: every mismatch —
/// including blocking-on → blocking-off and the reverse — is a typed
/// `InvalidConfig`, never a silently different continuation.
#[test]
fn restore_rejects_blocking_scheme_mismatch() {
    let ds = dataset(45, 60);
    let dir = std::env::temp_dir().join(format!("hera-blocker-mismatch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    for (written, restored) in [
        (BlockingScheme::token(), BlockingScheme::None),
        (BlockingScheme::token(), BlockingScheme::qgram()),
        (BlockingScheme::None, BlockingScheme::token()),
    ] {
        let path = dir.join(format!("{}.hera", written.name()));
        let mut session =
            HeraSession::builder(HeraConfig::new(DELTA, XI).with_blocking(written.clone())).build();
        let schemas = mirror_schemas(&mut session, &ds);
        for r in ds.iter().take(30) {
            session
                .add_record(schemas[r.schema.index()], r.values.clone())
                .unwrap();
        }
        session.resolve();
        session.checkpoint(&path).unwrap();

        let err = HeraSession::builder(HeraConfig::new(DELTA, XI).with_blocking(restored.clone()))
            .restore(&path)
            .err()
            .unwrap_or_else(|| {
                panic!(
                    "restore of a '{}' snapshot under '{}' must fail",
                    written.name(),
                    restored.name()
                )
            });
        assert!(
            matches!(err, HeraError::InvalidConfig(_)),
            "{} -> {}: {err}",
            written.name(),
            restored.name()
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir(&dir).ok();
}
