//! Property tests for [`hera::RunStats`] internal consistency: on random
//! datasets, the counters the observability layer reports must agree with
//! each other — cache traffic accounts for every cached-path lookup,
//! per-round metric calls partition the total, timings nest.

use hera::{Hera, HeraConfig, RunStats};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};

fn random_dataset(seed: u64, n_records: usize) -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: format!("stats-prop-{seed}"),
        seed,
        n_records,
        n_entities: (n_records / 6).max(2),
        n_attrs: 10,
        n_sources: 3,
        min_source_attrs: 5,
        max_source_attrs: 8,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate()
}

/// The invariants behind `RunStats::check_consistency`, spelled out so a
/// failure names the exact counter pair that disagreed.
fn assert_consistent(s: &RunStats, cache_enabled: bool, ctx: &str) {
    s.check_consistency(cache_enabled)
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
    // Cached-path lookups are fully accounted: every lookup is either a
    // hit or a miss, and every miss is a metric call.
    if cache_enabled {
        assert_eq!(
            s.sim_cache_hits + s.sim_cache_misses,
            s.sim_lookups(),
            "{ctx}: hits + misses must cover all cached-path lookups"
        );
        assert_eq!(s.metric_sim_calls, s.sim_cache_misses, "{ctx}");
    } else {
        assert_eq!(s.sim_cache_hits, 0, "{ctx}");
        assert_eq!(s.sim_cache_misses, 0, "{ctx}");
        assert_eq!(s.metric_sim_calls, s.sim_lookups(), "{ctx}");
    }
    // Per-round metric calls partition the total.
    let by_round: u64 = s.metric_calls_by_round.iter().sum();
    assert_eq!(by_round, s.metric_sim_calls, "{ctx}");
    assert_eq!(s.iterations, s.metric_calls_by_round.len(), "{ctx}");
    // Verification is a phase of the resolve loop.
    assert!(s.verify_time <= s.resolve_time, "{ctx}");
    // Every comparison runs a matching; direct-phase verifications may
    // run more.
    assert!(s.matchings_run >= s.comparisons, "{ctx}");
    assert!(s.final_index_size <= s.index_size, "{ctx}");
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    /// Random datasets, cache on: every counter invariant holds, and the
    /// cache-invariant lookup count matches the cache-off run.
    #[test]
    fn run_stats_are_internally_consistent(
        seed in proptest::prelude::any::<u64>(),
        n in 80usize..140,
    ) {
        let ds = random_dataset(seed, n);
        let on = Hera::builder(HeraConfig::new(0.5, 0.5)).build().run(&ds).unwrap();
        assert_consistent(&on.stats, true, "cache on");

        let off = Hera::builder(HeraConfig::new(0.5, 0.5).without_sim_cache()).build().run(&ds).unwrap();
        assert_consistent(&off.stats, false, "cache off");

        // The decisions are bit-identical, so the decision-driving
        // counters — including the cache-invariant lookup count — agree.
        assert_eq!(on.entity_of, off.entity_of);
        assert_eq!(on.stats.merges, off.stats.merges);
        assert_eq!(on.stats.iterations, off.stats.iterations);
        assert_eq!(on.stats.sim_lookups(), off.stats.sim_lookups());
    }
}

#[test]
fn check_consistency_rejects_broken_counters() {
    let ds = random_dataset(7, 90);
    let result = Hera::builder(HeraConfig::new(0.5, 0.5))
        .build()
        .run(&ds)
        .unwrap();
    let good = result.stats.clone();
    good.check_consistency(true).unwrap();

    let mut s = good.clone();
    s.metric_sim_calls += 1;
    assert!(s.check_consistency(true).is_err(), "miss accounting");

    let mut s = good.clone();
    s.metric_calls_by_round.push(1);
    assert!(s.check_consistency(true).is_err(), "round partition");

    let mut s = good.clone();
    s.iterations += 1;
    assert!(s.check_consistency(true).is_err(), "round count");

    let mut s = good.clone();
    s.verify_time = s.resolve_time + std::time::Duration::from_secs(1);
    assert!(s.check_consistency(true).is_err(), "time nesting");

    let mut s = good;
    s.sim_cache_hits += 1;
    assert!(s.check_consistency(false).is_err(), "cache-off traffic");
}
