//! Differential / equivalence tests across independent implementations of
//! the same quantity: the indexed verifier vs the nest-loop verifier, the
//! grouped index vs the paper-literal flat index, and Algorithm-1 bounds
//! vs the exact similarity.

use hera::{
    BoundMode, FlatIndex, InstanceVerifier, JoinConfig, NestLoopVerifier, SimilarityJoin,
    SuperRecord, TypeDispatch, ValuePairIndex,
};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};

fn dataset(seed: u64) -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: "equiv".into(),
        seed,
        n_records: 80,
        n_entities: 15,
        n_attrs: 10,
        n_sources: 3,
        min_source_attrs: 5,
        max_source_attrs: 8,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate()
}

/// The indexed verifier and the four-nested-loops verifier implement the
/// same Definition 5 — they must agree on every record pair.
#[test]
fn indexed_equals_nestloop_on_generated_data() {
    for seed in [1, 2, 3] {
        let ds = dataset(seed);
        let metric = TypeDispatch::paper_default();
        let xi = 0.5;
        let pairs = SimilarityJoin::new(JoinConfig::new(xi), &metric).join_dataset(&ds);
        let index = ValuePairIndex::build(pairs);
        let supers: Vec<SuperRecord> = ds
            .iter()
            .map(|r| SuperRecord::from_record(&ds, r))
            .collect();
        let indexed = InstanceVerifier::new(&metric, xi, true);
        let nest = NestLoopVerifier::new(xi);
        for (i, j) in index.record_pairs() {
            let a = indexed
                .verify(
                    &index,
                    &supers[i as usize],
                    &supers[j as usize],
                    &ds.registry,
                    None,
                )
                .sim;
            let b = nest.similarity(&supers[i as usize], &supers[j as usize], &metric);
            assert!(
                (a - b).abs() < 1e-9,
                "seed {seed} pair ({i},{j}): indexed {a} vs nest-loop {b}"
            );
        }
    }
}

/// Grouped and flat indexes must agree on every group of real data.
#[test]
fn grouped_equals_flat_index() {
    let ds = dataset(4);
    let metric = TypeDispatch::paper_default();
    let pairs = SimilarityJoin::new(JoinConfig::new(0.5), &metric).join_dataset(&ds);
    let grouped = ValuePairIndex::build(pairs.clone());
    let flat = FlatIndex::build(pairs);
    assert_eq!(grouped.len(), flat.len());
    for (i, j) in grouped.record_pairs() {
        assert_eq!(grouped.group(i, j), flat.group(i, j), "group ({i},{j})");
    }
}

/// Sound bounds must bracket the exact similarity on every real group;
/// the paper-mode upper bound must dominate it too.
#[test]
fn bounds_bracket_exact_similarity() {
    let ds = dataset(5);
    let metric = TypeDispatch::paper_default();
    let xi = 0.5;
    let pairs = SimilarityJoin::new(JoinConfig::new(xi), &metric).join_dataset(&ds);
    let index = ValuePairIndex::build(pairs);
    let supers: Vec<SuperRecord> = ds
        .iter()
        .map(|r| SuperRecord::from_record(&ds, r))
        .collect();
    let verifier = InstanceVerifier::new(&metric, xi, true);
    for (i, j) in index.record_pairs() {
        let (si, sj) = (
            supers[i as usize].informative_size(),
            supers[j as usize].informative_size(),
        );
        let exact = verifier
            .verify(
                &index,
                &supers[i as usize],
                &supers[j as usize],
                &ds.registry,
                None,
            )
            .sim;
        let sound = index.bounds(i, j, si, sj, BoundMode::Sound);
        assert!(
            sound.up + 1e-9 >= exact,
            "pair ({i},{j}): up {} < exact {exact}",
            sound.up
        );
        assert!(
            sound.low <= exact + 1e-9,
            "pair ({i},{j}): low {} > exact {exact}",
            sound.low
        );
        if sound.is_exact() {
            assert!(
                (sound.up - exact).abs() < 1e-9,
                "pair ({i},{j}): pinched bounds {} ≠ exact {exact}",
                sound.up
            );
        }
        let paper = index.bounds(i, j, si, sj, BoundMode::Paper);
        assert!(paper.up + 1e-9 >= exact, "paper upper bound unsound");
    }
}

/// The similarity join's prefix filter loses nothing against the
/// exhaustive join on generated data.
#[test]
fn join_prefix_filter_is_lossless() {
    let ds = dataset(6);
    let metric = TypeDispatch::paper_default();
    for xi in [0.4, 0.6, 0.8] {
        let fast = SimilarityJoin::new(JoinConfig::new(xi), &metric).join_dataset(&ds);
        let slow = SimilarityJoin::new(JoinConfig::new(xi).exhaustive(), &metric).join_dataset(&ds);
        assert_eq!(fast.len(), slow.len(), "xi={xi}");
        assert_eq!(fast, slow, "xi={xi}");
    }
}
