//! Concurrency properties of the sharded service, held under the
//! deterministic schedule harness (`hera::serve::harness`):
//!
//! 1. **Sequential equivalence** — under random seeded schedules of
//!    interleaved ingest / lookup / budgeted resolve / stitch, across
//!    1–8 worker threads and 1–4 shards, the final stitched partition
//!    is bit-identical to a sequential single-shard reference session
//!    replaying the same arrival stream.
//! 2. **Bounded staleness, never torn** — every lookup the schedule
//!    issued returned either a provisional per-shard answer or the
//!    reference partition *at one of the boundary passes dispatched by
//!    then* — never a mixture of generations, never a pass that had not
//!    been dispatched.
//! 3. **Connection robustness** — a TCP client dying at every protocol
//!    stage (pre-request, mid-line, mid-request, between requests)
//!    neither panics the server nor leaks its connection thread; the
//!    server keeps serving and still shuts down cleanly (joining all
//!    threads — a leaked thread would hang the shutdown).
//! 4. **Routing stability** — `route_shard` is a pure function of the
//!    record, so any arrival order routes identically; shard counts 1–4
//!    stitch to the same partition (one pinned seed per count).
//!
//! Failing schedule seeds are persisted under
//! `/tmp/hera-serve-sched-<seed>/` (dataset + schedule parameters), the
//! same pattern the chaos suite uses, so CI can upload them.

use hera::block::route_shard;
use hera::serve::harness::{drive, Schedule, ScheduledOp};
use hera::serve::{serve_tcp, ErService, LookupReply, TcpClient};
use hera::{HeraConfig, HeraSession, ResolveBudget, SchemaId};
use hera_datagen::{CorruptionConfig, DatagenConfig, Generator};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Arc;

const DELTA: f64 = 0.5;
const XI: f64 = 0.5;

/// splitmix64 — same per-case seed fan-out as the chaos suite.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn dataset(seed: u64, n_records: usize) -> hera::Dataset {
    Generator::new(DatagenConfig {
        name: format!("serve-conc-{seed}"),
        seed,
        n_records,
        n_entities: (n_records / 5).max(2),
        n_attrs: 10,
        n_sources: 3,
        min_source_attrs: 5,
        max_source_attrs: 8,
        corruption: CorruptionConfig::moderate(),
        domain: Default::default(),
    })
    .generate()
}

/// Everything one master seed expands to.
struct Case {
    ds: hera::Dataset,
    shards: usize,
    workers: usize,
    stitch_every: usize,
    schedule: Schedule,
    lookups: usize,
    resolves: usize,
    stitches: usize,
}

fn expand(master_seed: u64) -> Case {
    let mut s = master_seed;
    let n_records = 36 + (next(&mut s) % 29) as usize; // 36..=64
    let ds = dataset(next(&mut s), n_records);
    let shards = 1 + (next(&mut s) % 4) as usize; // 1..=4
    let workers = 1 + (next(&mut s) % 8) as usize; // 1..=8
                                                   // Half the cases stitch automatically mid-stream, half only on the
                                                   // schedule's explicit stitch ops.
    let stitch_every = if next(&mut s).is_multiple_of(2) {
        8 + (next(&mut s) % 16) as usize
    } else {
        0
    };
    Case {
        ds,
        shards,
        workers,
        stitch_every,
        schedule: Schedule {
            seed: next(&mut s),
            clients: 1 + (next(&mut s) % 4) as usize,
        },
        lookups: n_records / 2,
        resolves: 3,
        stitches: 2,
    }
}

/// Builds the op list: every dataset record once, plus lookups,
/// budgeted resolves, and explicit stitches for the scheduler to
/// interleave.
fn ops_for(case: &Case, seed: u64) -> Vec<ScheduledOp> {
    let mut s = seed ^ 0x5eed;
    let mut ops: Vec<ScheduledOp> = case
        .ds
        .iter()
        .map(|rec| ScheduledOp::Ingest(rec.schema, rec.values.clone()))
        .collect();
    for _ in 0..case.lookups {
        ops.push(ScheduledOp::Lookup);
    }
    for _ in 0..case.resolves {
        ops.push(ScheduledOp::Resolve(ResolveBudget::comparisons(
            50 + next(&mut s) % 350,
        )));
    }
    for _ in 0..case.stitches {
        ops.push(ScheduledOp::Stitch);
    }
    ops
}

/// One reference generation: the sequential partition after resolving
/// at a boundary.
struct RefView {
    boundary: usize,
    entity: Vec<u32>,
    members: HashMap<u32, Vec<u32>>,
}

/// Replays `arrivals` through a sequential single-shard session,
/// resolving at exactly the dispatched boundaries, and snapshots the
/// partition at each one. Returns the per-boundary views and the final
/// clusters (after a final full resolve, mirroring the service's final
/// stitch).
fn reference_run(
    service_schemas: &[(String, Vec<String>)],
    arrivals: &[(SchemaId, Vec<hera::Value>)],
    boundaries: &[usize],
) -> (Vec<RefView>, Vec<Vec<u32>>, HeraSession) {
    let mut reference = HeraSession::builder(HeraConfig::new(DELTA, XI)).build();
    for (name, attrs) in service_schemas {
        reference.add_schema(name.clone(), attrs.clone());
    }
    let mut views = Vec::new();
    let mut at = 0usize;
    for &boundary in boundaries {
        assert!(boundary >= at, "boundaries are monotone");
        while at < boundary {
            let (schema, values) = &arrivals[at];
            reference.add_record(*schema, values.clone()).unwrap();
            at += 1;
        }
        reference.resolve();
        let entity: Vec<u32> = (0..at as u32)
            .map(|id| reference.entity_of(hera::RecordId::new(id)))
            .collect();
        let mut members: HashMap<u32, Vec<u32>> = HashMap::new();
        for cluster in reference.clusters() {
            members.insert(entity[cluster[0] as usize], cluster);
        }
        views.push(RefView {
            boundary,
            entity,
            members,
        });
    }
    while at < arrivals.len() {
        let (schema, values) = &arrivals[at];
        reference.add_record(*schema, values.clone()).unwrap();
        at += 1;
    }
    reference.resolve();
    let finals = reference.clusters();
    (views, finals, reference)
}

/// Persists a failing case for CI artifact upload; returns the dir.
fn persist_failure(master_seed: u64, case: &Case) -> String {
    let dir = std::env::temp_dir().join(format!("hera-serve-sched-{master_seed}"));
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(
        dir.join("dataset.json"),
        case.ds.to_json().unwrap_or_default(),
    );
    let params = format!(
        "master_seed={master_seed}\nshards={}\nworkers={}\nstitch_every={}\nschedule_seed={}\nclients={}\n",
        case.shards, case.workers, case.stitch_every, case.schedule.seed, case.schedule.clients,
    );
    let _ = std::fs::write(dir.join("params.txt"), params);
    dir.display().to_string()
}

/// Runs one schedule case end to end and checks every property.
fn run_case(master_seed: u64) -> Result<(), String> {
    let case = expand(master_seed);
    let fail = |detail: String| {
        let dir = persist_failure(master_seed, &case);
        Err(format!(
            "seed {master_seed} ({} shard(s), {} worker(s), stitch_every {}, {} client(s)): \
             {detail}\ncase persisted at {dir}",
            case.shards, case.workers, case.stitch_every, case.schedule.clients
        ))
    };

    let service = ErService::builder(HeraConfig::new(DELTA, XI), case.shards)
        .workers(case.workers)
        .stitch_every(case.stitch_every)
        .build();
    let schemas: Vec<(String, Vec<String>)> = case
        .ds
        .registry
        .schemas()
        .map(|s| {
            (
                s.name.clone(),
                s.attrs.iter().map(|a| a.name.clone()).collect(),
            )
        })
        .collect();
    for (name, attrs) in &schemas {
        service.add_schema(name, attrs);
    }

    let log = drive(&service, ops_for(&case, master_seed), &case.schedule)
        .map_err(|e| format!("seed {master_seed}: drive failed: {e}"))?;
    // Cover the tail: the final boundary pass every deployment would run.
    service.stitch();

    let mut boundaries = log.boundaries.clone();
    boundaries.push(log.arrivals.len());
    let (views, want, reference) = reference_run(&schemas, &log.arrivals, &boundaries);

    // Property 1: final stitched partition == sequential reference.
    let got = service.stitched_partition();
    if got != want {
        return fail(format!(
            "stitched partition diverged from the sequential reference \
             ({} vs {} cluster(s))",
            got.len(),
            want.len()
        ));
    }
    for id in 0..log.arrivals.len() as u32 {
        let reply = service
            .lookup(id)
            .map_err(|e| format!("lookup {id}: {e}"))?;
        if reply.provisional || reply.entity != reference.entity_of(hera::RecordId::new(id)) {
            return fail(format!("final lookup {id} diverged: {reply:?}"));
        }
    }

    // Property 2: every mid-schedule lookup was provisional or one of
    // the generations dispatched by then — never torn, never future.
    for sample in &log.lookups {
        let reply = &sample.reply;
        if !reply.members.contains(&sample.id) {
            return fail(format!(
                "lookup {} returned members {:?} not containing the record",
                sample.id, reply.members
            ));
        }
        if reply.provisional {
            // Provisional labels come from one shard's coherent view;
            // the label must itself be a member.
            if !reply.members.contains(&reply.entity) {
                return fail(format!(
                    "provisional lookup {} label {} outside its members {:?}",
                    sample.id, reply.entity, reply.members
                ));
            }
            continue;
        }
        let candidates: Vec<&RefView> = views[..sample.dispatched]
            .iter()
            .filter(|v| v.boundary > sample.id as usize)
            .collect();
        let matched = candidates.iter().any(|v| {
            v.entity[sample.id as usize] == reply.entity
                && v.members.get(&reply.entity) == Some(&reply.members)
        });
        if !matched {
            return fail(format!(
                "stitched lookup {} = {:?} matches none of the {} dispatched \
                 generation(s) covering it (torn or future value)",
                sample.id,
                reply,
                candidates.len()
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The acceptance criterion: ≥128 seeded schedules, every worker
    /// count 1–8, stitched partition bit-identical to the sequential
    /// reference, every lookup provisional-or-published.
    #[test]
    fn schedules_match_sequential_reference(master_seed in any::<u64>()) {
        let outcome = run_case(master_seed);
        prop_assert!(outcome.is_ok(), "{}", outcome.err().unwrap_or_default());
    }
}

/// Pinned sweep: one dataset, every worker count 1–8 (clamped by the
/// service to the shard count where applicable), identical partition —
/// the tentpole's determinism claim without proptest in the loop.
#[test]
fn worker_count_never_changes_the_partition() {
    let ds = dataset(1206, 90);
    let schedule = Schedule {
        seed: 77,
        clients: 3,
    };
    let mut partitions = Vec::new();
    for workers in 1..=8 {
        let service = ErService::builder(HeraConfig::new(DELTA, XI), 4)
            .workers(workers)
            .stitch_every(25)
            .build();
        let schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                service.add_schema(
                    &s.name,
                    &s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        let ops: Vec<ScheduledOp> = ds
            .iter()
            .map(|rec| ScheduledOp::Ingest(schemas[rec.schema.index()], rec.values.clone()))
            .chain((0..30).map(|_| ScheduledOp::Lookup))
            .chain(std::iter::once(ScheduledOp::Resolve(
                ResolveBudget::comparisons(200),
            )))
            .collect();
        drive(&service, ops, &schedule).unwrap();
        service.stitch();
        partitions.push(service.stitched_partition());
    }
    for (i, p) in partitions.iter().enumerate().skip(1) {
        assert_eq!(
            p,
            &partitions[0],
            "workers={} diverged from workers=1",
            i + 1
        );
    }
}

/// Satellite: a client dying at every protocol stage must not panic the
/// server or leak its connection thread. After each death a fresh
/// client verifies the server still answers, and the final `shutdown`
/// joins every connection thread — a leaked thread would hang here.
#[test]
fn tcp_client_death_at_every_stage_leaves_server_serving() {
    use std::io::{BufRead as _, BufReader};
    use std::net::TcpStream;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let service = Arc::new(ErService::builder(HeraConfig::new(DELTA, XI), 2).build());
        serve_tcp(service, listener).unwrap();
    });

    // Stage 0: connect, say nothing, die.
    drop(TcpStream::connect(addr).unwrap());

    // Stage 1: die mid-line (no trailing newline — the server sees a
    // partial request when the socket closes).
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"{\"cmd\":\"sta").unwrap();
        drop(s);
    }

    // Stage 2: complete request, die without reading the reply (the
    // server's reply write hits a closed socket).
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
        drop(s);
    }

    // Stage 3: one full request, then a partial second one, then death.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"{\"cmd\":\"schema\",\"name\":\"crm\",\"attrs\":[\"name\"]}\n")
            .unwrap();
        let mut line = String::new();
        BufReader::new(s.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        s.write_all(b"{\"cmd\":\"ingest\",\"schema\":0,\"va")
            .unwrap();
        drop(s);
    }

    // Stage 4: garbage then death — the error reply path must also
    // survive the closed socket.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"not json at all\n").unwrap();
        drop(s);
    }

    // After all five deaths the server still serves new clients with
    // intact state (the schema from stage 3 survived).
    let mut c = TcpClient::connect(addr).unwrap();
    let id = c
        .ingest(SchemaId::new(0), vec![hera::Value::from("carol stone")])
        .unwrap();
    assert_eq!(id.id, 0, "state survived the client deaths");
    assert_eq!(c.stitch().unwrap(), 1);
    let hit: LookupReply = c.lookup(0).unwrap();
    assert!(!hit.provisional);
    c.shutdown().unwrap();

    // Shutdown joins every connection thread; a leaked thread from any
    // of the dead clients would deadlock this join.
    server.join().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite: `route_shard` is a pure function of the record —
    /// re-ingesting the same stream in any arrival order routes every
    /// record to the same shard.
    #[test]
    fn route_shard_is_arrival_order_invariant(
        seed in any::<u64>(),
        shards in 1usize..=4,
    ) {
        let ds = dataset(seed % 1000, 40);
        let baseline: Vec<usize> = ds
            .iter()
            .map(|rec| route_shard(&rec.values, shards))
            .collect();
        // A seeded permutation of the same records.
        let mut order: Vec<usize> = (0..ds.len()).collect();
        let mut s = seed ^ 0x0dd_5eed;
        for i in (1..order.len()).rev() {
            let j = (next(&mut s) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let records: Vec<_> = ds.iter().collect();
        for &i in &order {
            prop_assert_eq!(
                route_shard(&records[i].values, shards),
                baseline[i],
                "record {} routed differently on re-ingest", i
            );
        }
    }
}

/// Satellite: shard counts 1–4 all stitch to the same partition — one
/// pinned seed per shard count, so every count is exercised regardless
/// of what proptest draws elsewhere.
#[test]
fn every_shard_count_stitches_to_the_same_partition() {
    for (shards, seed) in [(1usize, 301u64), (2, 302), (3, 303), (4, 304)] {
        let ds = dataset(seed, 72);
        let mut reference = HeraSession::builder(HeraConfig::new(DELTA, XI)).build();
        let ref_schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                reference.add_schema(
                    s.name.clone(),
                    s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for rec in ds.iter() {
            reference
                .add_record(ref_schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
        }
        reference.resolve();

        let service = ErService::builder(HeraConfig::new(DELTA, XI), shards).build();
        let schemas: Vec<SchemaId> = ds
            .registry
            .schemas()
            .map(|s| {
                service.add_schema(
                    &s.name,
                    &s.attrs.iter().map(|a| a.name.clone()).collect::<Vec<_>>(),
                )
            })
            .collect();
        for rec in ds.iter() {
            service
                .ingest(schemas[rec.schema.index()], rec.values.clone())
                .unwrap();
        }
        service.stitch();
        assert_eq!(
            service.stitched_partition(),
            reference.clusters(),
            "shards={shards} seed={seed}"
        );
    }
}
