//! Minimal vendored subset of the `rand` 0.8 API.
//!
//! Implements exactly the surface this workspace uses: [`RngCore`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng`] (including the
//! SplitMix64-based `seed_from_u64` default), and
//! [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Determinism is the only contract that matters to the workspace (seeded
//! generators must reproduce the same datasets run over run); the exact
//! output streams of crates.io `rand` are *not* reproduced.

#![forbid(unsafe_code)]

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform float in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction crates.io rand uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Uniform sampling from range types.
pub mod distributions {
    use super::{unit_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A type uniformly samplable between two bounds. The single blanket
    /// [`SampleRange`] impl below mirrors crates.io rand's structure so
    /// that integer-literal ranges unify with the call site's expected
    /// type (`v[rng.gen_range(0..n)]` infers `usize`).
    pub trait SampleUniform: Copy + PartialOrd {
        /// Draws a sample in `[lo, hi)` (`hi` included when `inclusive`).
        fn sample_between<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    /// A range a value can be uniformly sampled from.
    pub trait SampleRange<T> {
        /// Draws one sample.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        #[inline]
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "empty range");
            T::sample_between(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        #[inline]
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range");
            T::sample_between(lo, hi, true, rng)
        }
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self,
                    hi: Self,
                    _inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
                }
            }
        )*};
    }

    uniform_float!(f32, f64);
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic generator for testing the trait plumbing.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = XorShift(0x1234_5678);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = XorShift(42);
        assert!(!rng.gen_bool(0.0));
        let heads = (0..100).filter(|_| rng.gen_bool(0.5)).count();
        assert!((20..=80).contains(&heads), "suspiciously biased: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = XorShift(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = XorShift(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
