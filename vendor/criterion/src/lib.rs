//! Minimal vendored benchmark harness, API-compatible with the subset of
//! `criterion` 0.5 this workspace uses.
//!
//! Differences from crates.io criterion, by design:
//!
//! * No statistical analysis, outlier detection, or HTML reports — each
//!   benchmark runs a fixed warm-up followed by `sample_size` timed
//!   samples and prints min / mean / max wall-clock per iteration.
//! * `--bench` / bench filters are accepted on the command line and a
//!   substring filter is honored, matching cargo's invocation of
//!   `harness = false` bench binaries.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The vendored harness runs one
/// routine call per setup call regardless of variant, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to set up.
    SmallInput,
    /// Inputs are expensive to set up.
    LargeInput,
    /// Run one iteration per batch.
    PerIteration,
}

/// A `(function, parameter)` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `function/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    /// Number of timed samples to record.
    samples: usize,
    /// Per-sample wall-clock durations for one iteration each.
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            recorded: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`], passing the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.recorded.push(start.elapsed());
        }
    }
}

fn report(group: Option<&str>, name: &str, recorded: &[Duration]) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if recorded.is_empty() {
        println!("{full:<60} (no samples)");
        return;
    }
    let min = recorded.iter().min().unwrap();
    let max = recorded.iter().max().unwrap();
    let mean = recorded.iter().sum::<Duration>() / recorded.len() as u32;
    println!(
        "{full:<60} [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

const DEFAULT_SAMPLES: usize = 10;

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`; a bare
        // non-flag argument is a substring filter on benchmark names.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Self {
            filter,
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Sets the sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.matches(name) {
            let mut b = Bencher::new(self.samples);
            f(&mut b);
            report(None, name, &b.recorded);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            samples: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    fn effective_samples(&self) -> usize {
        self.samples.unwrap_or(self.parent.samples)
    }

    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = Some(samples);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        if self.parent.matches(&full) {
            let mut b = Bencher::new(self.effective_samples());
            f(&mut b);
            report(Some(&self.name), name, &b.recorded);
        }
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.to_string();
        let full = format!("{}/{id}", self.name);
        if self.parent.matches(&full) {
            let mut b = Bencher::new(self.effective_samples());
            f(&mut b, input);
            report(Some(&self.name), &id, &b.recorded);
        }
        self
    }

    /// Ends the group (kept for API compatibility; reporting is inline).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::new(5);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert_eq!(b.recorded.len(), 5);
        // 1 warm-up + 5 samples.
        assert_eq!(n, 6);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(3);
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8, 2, 3]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4);
        assert_eq!(b.recorded.len(), 3);
    }

    #[test]
    fn benchmark_id_renders_function_slash_parameter() {
        let id = BenchmarkId::new("resolve", "delta_0.5");
        assert_eq!(id.to_string(), "resolve/delta_0.5");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn group_runs_and_respects_sample_size() {
        let mut c = Criterion {
            filter: None,
            samples: DEFAULT_SAMPLES,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("one", |b| {
                b.iter(|| {
                    ran += 1;
                    ran
                })
            });
            g.finish();
        }
        // 1 warm-up + 2 samples.
        assert_eq!(ran, 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match_me".into()),
            samples: 1,
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes_match_me_now", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
