//! Minimal vendored implementation of the `rustc-hash` crate: the Fx hash
//! function plus the `FxHashMap`/`FxHashSet` aliases the workspace uses.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the handful of external crates it needs are vendored as small,
//! API-compatible subsets under `vendor/`. Only the surface the workspace
//! actually consumes is implemented.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A speedy, non-cryptographic hash used throughout rustc.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<String> = FxHashSet::default();
        assert!(s.insert("a".to_owned()));
        assert!(!s.insert("a".to_owned()));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"world"));
        // Different lengths with a shared prefix must differ.
        assert_ne!(h(b"abc"), h(b"abcd"));
    }
}
