//! Value-generation strategies.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut ChaCha8Rng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if no arms are given.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut ChaCha8Rng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut ChaCha8Rng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self;
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut ChaCha8Rng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut ChaCha8Rng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut ChaCha8Rng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut ChaCha8Rng) -> f64 {
        // Finite values only: properties over similarities don't want NaN.
        rng.gen_range(-1.0e12..1.0e12)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut ChaCha8Rng) -> f32 {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

// ---- The string-pattern strategy. ----------------------------------------
//
// `proptest` treats `&str` as a regex; this vendored subset supports the
// patterns the workspace uses: literal characters, `[a-z0-9_]`-style
// classes (with ranges), and the repetitions `{m}`, `{m,n}`, `*`, `+`,
// `?` applied to the preceding atom.

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces: Vec<Piece> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges: Vec<(char, char)> = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            assert!(lo <= hi, "bad class range {lo}-{hi} in {pattern:?}");
                            ranges.push((lo, hi));
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition lower bound"),
                        hi.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad repetition {min}..{max} in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut ChaCha8Rng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick).expect("class range yields chars");
                }
                pick -= span;
            }
            unreachable!("pick exceeded class total")
        }
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut ChaCha8Rng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = rng.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn printable_ascii_class() {
        let s = "[ -~]{0,24}";
        let mut r = rng();
        for _ in 0..200 {
            let v = s.sample(&mut r);
            assert!(v.len() <= 24);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn literals_and_repetitions() {
        let mut r = rng();
        assert_eq!("abc".sample(&mut r), "abc");
        let v = "x{3}".sample(&mut r);
        assert_eq!(v, "xxx");
        let v = "[ab]+".sample(&mut r);
        assert!(!v.is_empty() && v.chars().all(|c| c == 'a' || c == 'b'));
    }

    #[test]
    fn union_and_map_compose() {
        let strat = crate::prop_oneof!["[0-9]{2}".prop_map(|s| s.len()), Just(7usize),];
        let mut r = rng();
        for _ in 0..50 {
            let v = strat.sample(&mut r);
            assert!(v == 2 || v == 7);
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut r = rng();
        let (a, b): (u32, f64) = (0..10u32, 0.0..1.0f64).sample(&mut r);
        assert!(a < 10);
        assert!((0.0..1.0).contains(&b));
    }
}
