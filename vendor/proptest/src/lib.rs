//! Minimal vendored property-testing harness, API-compatible with the
//! subset of `proptest` 1.x this workspace uses.
//!
//! Differences from crates.io proptest, by design:
//!
//! * No shrinking — a failing case panics with the generated inputs in the
//!   assertion message instead of a minimized counterexample.
//! * Deterministic: cases are derived from a fixed seed per (test name,
//!   case index), so CI failures always reproduce locally.
//! * String strategies implement only the small regex subset the
//!   workspace uses (char classes with ranges plus `{m,n}` / `*` / `+` /
//!   `?` repetition).

#![forbid(unsafe_code)]

pub mod strategy;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::Rng;
    use rand_chacha::ChaCha8Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rand::SeedableRng;

        #[test]
        fn lengths_respect_spec() {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let ranged = vec(0u32..5, 0..40);
            let exact = vec(0u32..4, 5usize);
            for _ in 0..100 {
                let v = ranged.sample(&mut rng);
                assert!(v.len() < 40);
                assert!(v.iter().all(|&x| x < 5));
                assert_eq!(exact.sample(&mut rng).len(), 5);
            }
        }
    }
}

/// Test-runner configuration.
pub mod config {
    /// Subset of proptest's config: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// Runtime support for the [`proptest!`] macro.
pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Deterministic per-case generator: seeded from the test's fully
    /// qualified name and the case index, so every case reproduces.
    pub fn case_rng(test_name: &str, case: u64) -> ChaCha8Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        ChaCha8Rng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// The strategy prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type (each arm is boxed).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each function runs its body over many
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::config::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::config::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut __proptest_rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::strategy::Strategy::sample(
                    &$strat,
                    &mut __proptest_rng,
                );)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_hold(x in 0..100u32, y in -3i64..=3, f in 0.0..1.0f64) {
            prop_assert!(x < 100);
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.0..1.0).contains(&f), "f = {f}");
        }

        #[test]
        fn any_and_map(seed in any::<u64>(), s in "[a-z]{1,8}") {
            let doubled = (0..=1u8).prop_map(|b| u64::from(b) + seed / 2);
            let _ = doubled;
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn oneof_covers_arms(pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(pick == 1 || pick == 2);
            prop_assert_eq!(pick, pick);
            prop_assert_ne!(pick, 0);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = 0..1_000_000u64;
        let a: Vec<u64> = (0..10)
            .map(|i| s.sample(&mut crate::test_runner::case_rng("t", i)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|i| s.sample(&mut crate::test_runner::case_rng("t", i)))
            .collect();
        assert_eq!(a, b);
    }
}
