//! Minimal vendored `rand_chacha`: a real ChaCha8 block generator behind
//! the `rand` traits. Deterministic per seed, which is the only property
//! the workspace relies on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// The ChaCha block function with 8 rounds (4 double rounds), keyed by a
/// 256-bit seed and a 64-bit block counter.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key/nonce-derived initial state (words 4..14 constant per seed).
    key: [u32; 8],
    /// Block counter (words 12/13).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next word to emit from `block`.
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        let mut rng = Self {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let v: u32 = rng.gen_range(0..10);
        assert!(v < 10);
        // Output should look uniform-ish: both halves of the range hit.
        let draws: Vec<u32> = (0..200).map(|_| rng.gen_range(0..100)).collect();
        assert!(draws.iter().any(|&d| d < 50));
        assert!(draws.iter().any(|&d| d >= 50));
    }
}
